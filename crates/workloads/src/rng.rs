//! Deterministic pseudo-random number generation.
//!
//! Every simulation in this suite is a pure function of (configuration,
//! seed); the workload models therefore use a self-contained xoshiro256**
//! generator seeded through SplitMix64 rather than an external RNG whose
//! stream might change across versions.

/// A deterministic xoshiro256** PRNG.
///
/// # Example
///
/// ```
/// use hbc_workloads::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from `seed` (any value, including zero).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction; the tiny modulo bias is irrelevant
        // for workload sampling.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric sample with the given mean (support `1, 2, 3, ...`).
    ///
    /// Used for dependency distances: a mean of `m` produces mostly short
    /// distances with an exponential tail.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is less than one.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        assert!(mean >= 1.0, "geometric mean must be at least one");
        if mean == 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
    }

    /// The precomputed log-denominator `ln(1 - 1/mean)` for
    /// [`Rng::geometric_with`].
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not greater than one (`mean == 1.0` draws
    /// nothing in [`Rng::geometric`], so there is no denominator to cache).
    pub fn geometric_denom(mean: f64) -> f64 {
        assert!(mean > 1.0, "geometric denominator needs mean > 1");
        let p = 1.0 / mean;
        (1.0 - p).ln()
    }

    /// [`Rng::geometric`] with the `ln(1 - p)` denominator hoisted out:
    /// bit-identical samples from the identical single draw, minus one
    /// `ln` per call on hot paths that sample the same mean repeatedly.
    pub fn geometric_with(&mut self, denom: f64) -> u64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / denom).floor() as u64 + 1
    }

    /// Consumes exactly the randomness of [`Rng::geometric`] without
    /// computing the sample (two `ln` calls): fast paths that discard the
    /// value keep draw parity with the full path at a fraction of the cost.
    pub fn skip_geometric(&mut self, mean: f64) {
        if mean != 1.0 {
            let _ = self.next_u64();
        }
    }

    /// Splits off an independent generator (for per-component streams).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| r.geometric(5.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "observed mean {mean}");
        assert!((0..1000).all(|_| r.geometric(1.0) == 1));
    }

    #[test]
    fn geometric_with_matches_geometric() {
        let mut a = Rng::new(17);
        let mut b = Rng::new(17);
        let denom = Rng::geometric_denom(6.5);
        for _ in 0..10_000 {
            assert_eq!(a.geometric(6.5), b.geometric_with(denom));
        }
        assert_eq!(a, b, "identical draw counts leave identical state");
    }

    #[test]
    fn skip_geometric_keeps_draw_parity() {
        let mut a = Rng::new(23);
        let mut b = Rng::new(23);
        for mean in [1.0, 2.0, 40.0] {
            let _ = a.geometric(mean);
            b.skip_geometric(mean);
            assert_eq!(a, b, "mean {mean} desynchronized the streams");
        }
    }

    #[test]
    fn split_produces_independent_streams() {
        let mut parent = Rng::new(5);
        let mut child = parent.split();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_bound_panics() {
        let _ = Rng::new(0).below(0);
    }
}
