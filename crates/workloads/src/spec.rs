//! Benchmark specification data.

use std::fmt;

use crate::regions::PatternSpec;

/// The three benchmark groups of the study (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// SPEC95 integer: gcc, li, compress.
    SpecInt95,
    /// SPEC95 floating point: tomcatv, su2cor, apsi.
    SpecFp95,
    /// SimOS multiprogramming: pmake, database, VCS.
    Multiprogramming,
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Group::SpecInt95 => f.write_str("SPEC95 integer"),
            Group::SpecFp95 => f.write_str("SPEC95 floating point"),
            Group::Multiprogramming => f.write_str("SimOS multiprogramming"),
        }
    }
}

/// One row of the paper's Table 2: execution-time percentages and the
/// fraction of loads and stores in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Percent of execution time in kernel mode.
    pub kernel_pct: f64,
    /// Percent of execution time in user mode.
    pub user_pct: f64,
    /// Percent of execution time idle (waiting for I/O); excluded from IPC.
    pub idle_pct: f64,
    /// Percent of the instruction stream that is loads.
    pub load_pct: f64,
    /// Percent of the instruction stream that is stores.
    pub store_pct: f64,
}

impl Table2Row {
    /// Fraction of *non-idle* instructions executed in kernel mode.
    pub fn kernel_frac(&self) -> f64 {
        let non_idle = self.kernel_pct + self.user_pct;
        if non_idle <= 0.0 {
            0.0
        } else {
            self.kernel_pct / non_idle
        }
    }
}

/// A violated [`BenchmarkSpec`] consistency constraint.
///
/// Each variant names the offending spec so error messages from sweeps
/// over many benchmarks stay attributable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// Loads + stores + branches exceed 100% of the instruction stream.
    MixExceedsStream {
        /// Offending spec.
        name: &'static str,
        /// The combined percentage.
        mix_pct: f64,
    },
    /// A fractional field is outside `[0, 1]`.
    NotAProbability {
        /// Offending spec.
        name: &'static str,
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Mean dependency distance below one instruction.
    DepMeanTooSmall {
        /// Offending spec.
        name: &'static str,
    },
    /// No user reference pattern has positive weight.
    NoWeightedUserPattern {
        /// Offending spec.
        name: &'static str,
    },
    /// Process count of zero.
    NoProcesses {
        /// Offending spec.
        name: &'static str,
    },
    /// More than one process but no context-switch interval.
    MissingCtxInterval {
        /// Offending spec.
        name: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MixExceedsStream { name, mix_pct } => {
                write!(f, "{name}: loads+stores+branches exceed 100% ({mix_pct:.1})")
            }
            SpecError::NotAProbability { name, field, value } => {
                write!(f, "{name}: {field} = {value} is not a probability")
            }
            SpecError::DepMeanTooSmall { name } => {
                write!(f, "{name}: dep_mean must be at least 1")
            }
            SpecError::NoWeightedUserPattern { name } => {
                write!(f, "{name}: needs at least one weighted user pattern")
            }
            SpecError::NoProcesses { name } => write!(f, "{name}: needs at least one process"),
            SpecError::MissingCtxInterval { name } => {
                write!(f, "{name}: multi-process spec needs a context-switch interval")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Complete parameterization of one synthetic benchmark model.
///
/// This is a passive configuration record (fields are public by design);
/// the nine instances shipped with the crate live in
/// [`crate::Benchmark::spec`]. The parameters substitute for the paper's
/// SimOS/IRIX workloads: instruction mix and mode split come straight from
/// Table 2, while ILP, branch behaviour, and the memory mixture are tuned so
/// the per-benchmark miss-rate-versus-size curves reproduce Figure 3 and the
/// group-level scheduling behaviour matches Section 4.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Short benchmark name ("gcc").
    pub name: &'static str,
    /// One-line description (paper Table 1).
    pub description: &'static str,
    /// Benchmark group.
    pub group: Group,
    /// Execution-time and instruction-mix percentages (paper Table 2).
    pub table2: Table2Row,
    /// Fraction of the instruction stream that is control transfers.
    pub branch_frac: f64,
    /// Probability the front end predicts a control transfer correctly.
    pub branch_accuracy: f64,
    /// Probability a conditional branch is taken.
    pub taken_frac: f64,
    /// Fraction of non-memory, non-branch operations that are floating
    /// point.
    pub fp_frac: f64,
    /// Fraction of integer compute ops that are multiplies (divides are a
    /// tenth of this).
    pub int_long_frac: f64,
    /// Fraction of fp compute ops that are divides or square roots.
    pub fp_long_frac: f64,
    /// Mean register dependency distance, in instructions; larger means
    /// more instruction-level parallelism.
    pub dep_mean: f64,
    /// Probability that a source operand is the value of a recent load
    /// (tight load-use chains make performance sensitive to cache latency).
    pub load_use_prob: f64,
    /// Probability a compute instruction has a second source operand.
    pub two_src_prob: f64,
    /// Weighted user-mode reference patterns (weights need not sum to one;
    /// they are normalized).
    pub user_mem: Vec<(f64, PatternSpec)>,
    /// Weighted kernel-mode reference patterns.
    pub kernel_mem: Vec<(f64, PatternSpec)>,
    /// Number of processes (greater than one for the multiprogramming
    /// workloads; each gets its own copy of the user patterns).
    pub processes: u32,
    /// Instructions between context switches when `processes > 1`.
    pub ctx_interval: u64,
}

impl BenchmarkSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: fractions must be
    /// probabilities, the instruction mix must fit in 100%, and at least
    /// one user pattern with positive weight is required.
    pub fn validate(&self) -> Result<(), SpecError> {
        let t = &self.table2;
        let mix = t.load_pct + t.store_pct + self.branch_frac * 100.0;
        if mix >= 100.0 {
            return Err(SpecError::MixExceedsStream { name: self.name, mix_pct: mix });
        }
        for (field, v) in [
            ("branch_frac", self.branch_frac),
            ("branch_accuracy", self.branch_accuracy),
            ("taken_frac", self.taken_frac),
            ("fp_frac", self.fp_frac),
            ("int_long_frac", self.int_long_frac),
            ("fp_long_frac", self.fp_long_frac),
            ("two_src_prob", self.two_src_prob),
            ("load_use_prob", self.load_use_prob),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SpecError::NotAProbability { name: self.name, field, value: v });
            }
        }
        if self.dep_mean < 1.0 {
            return Err(SpecError::DepMeanTooSmall { name: self.name });
        }
        if self.user_mem.iter().all(|(w, _)| *w <= 0.0) {
            return Err(SpecError::NoWeightedUserPattern { name: self.name });
        }
        if self.processes == 0 {
            return Err(SpecError::NoProcesses { name: self.name });
        }
        if self.processes > 1 && self.ctx_interval == 0 {
            return Err(SpecError::MissingCtxInterval { name: self.name });
        }
        Ok(())
    }

    /// Sum of the (possibly unnormalized) user pattern weights.
    pub fn user_weight_total(&self) -> f64 {
        self.user_mem.iter().map(|(w, _)| w).sum()
    }

    /// Largest single-pattern footprint, a proxy for working-set size.
    pub fn max_footprint(&self) -> u64 {
        self.user_mem.iter().map(|(_, p)| p.footprint()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test",
            description: "test",
            group: Group::SpecInt95,
            table2: Table2Row {
                kernel_pct: 10.0,
                user_pct: 90.0,
                idle_pct: 0.0,
                load_pct: 30.0,
                store_pct: 10.0,
            },
            branch_frac: 0.15,
            branch_accuracy: 0.92,
            taken_frac: 0.6,
            fp_frac: 0.0,
            int_long_frac: 0.02,
            fp_long_frac: 0.0,
            dep_mean: 3.0,
            load_use_prob: 0.3,
            two_src_prob: 0.4,
            user_mem: vec![(1.0, PatternSpec::Random { footprint: 4096, reuse: 0.5 })],
            kernel_mem: vec![(1.0, PatternSpec::Random { footprint: 4096, reuse: 0.5 })],
            processes: 1,
            ctx_interval: 0,
        }
    }

    #[test]
    fn minimal_is_valid() {
        assert_eq!(minimal().validate(), Ok(()));
    }

    #[test]
    fn kernel_frac_splits_non_idle_time() {
        let row = Table2Row {
            kernel_pct: 18.4,
            user_pct: 17.0,
            idle_pct: 64.6,
            load_pct: 24.8,
            store_pct: 13.6,
        };
        assert!((row.kernel_frac() - 0.5198).abs() < 1e-3);
    }

    #[test]
    fn over_full_mix_rejected() {
        let mut s = minimal();
        s.table2.load_pct = 80.0;
        s.table2.store_pct = 30.0;
        assert!(s.validate().unwrap_err().to_string().contains("exceed"));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut s = minimal();
        s.branch_accuracy = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_patterns_rejected() {
        let mut s = minimal();
        s.user_mem.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn multiprocess_needs_interval() {
        let mut s = minimal();
        s.processes = 2;
        s.ctx_interval = 0;
        assert!(s.validate().is_err());
        s.ctx_interval = 1000;
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn max_footprint_reports_largest() {
        let mut s = minimal();
        s.user_mem.push((0.1, PatternSpec::Strided { footprint: 1 << 20, stride: 8, streams: 2 }));
        assert_eq!(s.max_footprint(), 1 << 20);
    }

    #[test]
    fn group_display() {
        assert_eq!(Group::SpecFp95.to_string(), "SPEC95 floating point");
    }

    #[test]
    fn kernel_frac_handles_all_idle() {
        let row = Table2Row {
            kernel_pct: 0.0,
            user_pct: 0.0,
            idle_pct: 100.0,
            load_pct: 10.0,
            store_pct: 5.0,
        };
        assert_eq!(row.kernel_frac(), 0.0);
    }

    #[test]
    fn user_weight_total_sums() {
        let mut s = minimal();
        s.user_mem.push((0.5, PatternSpec::Stack { footprint: 1024 }));
        assert!((s.user_weight_total() - 1.5).abs() < 1e-12);
    }
}
