//! The dynamic instruction stream generator.

use std::collections::VecDeque;

use hbc_isa::{DynInst, ExecMode, InstId, OpClass};

use crate::regions::PatternState;
use crate::spec::BenchmarkSpec;
use crate::{Benchmark, Rng};

/// Mean length, in instructions, of one kernel or user execution burst.
/// System activity arrives in syscall/interrupt-sized chunks rather than
/// being interleaved per instruction.
const MODE_RUN_LEN: u64 = 400;

/// Fraction of control transfers that are unconditional jumps/calls.
const JUMP_FRAC: f64 = 0.15;

/// Misprediction probability for unconditional control (BTB miss, indirect
/// target).
const JUMP_MISPREDICT: f64 = 0.02;

#[derive(Debug, Clone)]
struct ProcState {
    patterns: Vec<PatternState>,
    cumulative: Vec<f64>,
    last_chase: Option<InstId>,
}

impl ProcState {
    fn new(specs: &[(f64, crate::PatternSpec)], base: u64, rng: &mut Rng) -> Self {
        let total: f64 = specs.iter().map(|(w, _)| w.max(0.0)).sum();
        let mut acc = 0.0;
        let mut patterns = Vec::with_capacity(specs.len());
        let mut cumulative = Vec::with_capacity(specs.len());
        for (j, (w, p)) in specs.iter().enumerate() {
            acc += w.max(0.0) / total;
            cumulative.push(acc);
            // 32 MB of address space per pattern keeps footprints disjoint;
            // the extra non-power-of-two skew keeps different regions from
            // aliasing to the same cache sets (real allocations start at
            // arbitrary offsets, not at megabyte boundaries).
            let skew = (j as u64) * (32 << 20) + (j as u64) * 4200;
            patterns.push(PatternState::new(*p, base + skew, rng));
        }
        ProcState { patterns, cumulative, last_chase: None }
    }

    fn pick(&mut self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.cumulative.iter().position(|c| u < *c).unwrap_or(self.patterns.len() - 1)
    }
}

/// An infinite, deterministic stream of [`DynInst`]s modeling one benchmark.
///
/// The generator is an [`Iterator`] that never ends; the processor model
/// pulls as many instructions as the simulation needs. Two generators built
/// from the same `(spec, seed)` produce identical streams.
///
/// # Example
///
/// ```
/// use hbc_workloads::{Benchmark, WorkloadGen};
///
/// let insts: Vec<_> = WorkloadGen::new(Benchmark::Gcc, 1).take(1000).collect();
/// assert_eq!(insts.len(), 1000);
/// let loads = insts.iter().filter(|i| i.op().is_load()).count();
/// assert!(loads > 200 && loads < 360); // gcc is 28.1% loads
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: BenchmarkSpec,
    rng: Rng,
    next_id: u64,
    procs: Vec<ProcState>,
    kernel: ProcState,
    cur_proc: usize,
    since_switch: u64,
    kernel_frac: f64,
    cur_mode: ExecMode,
    mode_run_left: u64,
    /// Ids of the most recent loads, the preferred producers for the
    /// load-use dependences that make timing sensitive to cache latency.
    recent_loads: VecDeque<InstId>,
    /// `ln(1 - 1/dep_mean)`, hoisted out of the per-instruction geometric
    /// samples (`None` when `dep_mean == 1.0`, which draws nothing).
    dep_denom: Option<f64>,
    /// `ln(1 - 1/MODE_RUN_LEN)` for the mode-burst length samples.
    mode_denom: f64,
}

impl WorkloadGen {
    /// Creates a generator for one of the nine paper benchmarks.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        Self::from_spec(benchmark.spec(), seed)
    }

    /// Creates a generator from a custom specification.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`BenchmarkSpec::validate`].
    pub fn from_spec(spec: BenchmarkSpec, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid benchmark spec: {e}");
        }
        let mut rng = Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let procs = (0..spec.processes)
            .map(|p| {
                let base = ((u64::from(p) + 1) << 33) + u64::from(p) * 53_248;
                ProcState::new(&spec.user_mem, base, &mut rng)
            })
            .collect();
        let kernel = ProcState::new(&spec.kernel_mem, 1 << 45, &mut rng);
        let kernel_frac = spec.table2.kernel_frac();
        let dep_denom = (spec.dep_mean > 1.0).then(|| crate::Rng::geometric_denom(spec.dep_mean));
        let mode_denom = crate::Rng::geometric_denom(MODE_RUN_LEN as f64);
        WorkloadGen {
            spec,
            rng,
            next_id: 0,
            procs,
            kernel,
            cur_proc: 0,
            since_switch: 0,
            kernel_frac,
            cur_mode: ExecMode::User,
            mode_run_left: 0,
            recent_loads: VecDeque::with_capacity(8),
            dep_denom,
            mode_denom,
        }
    }

    /// The specification driving this generator.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    fn advance_mode(&mut self) {
        if self.mode_run_left == 0 {
            self.cur_mode =
                if self.rng.chance(self.kernel_frac) { ExecMode::Kernel } else { ExecMode::User };
            self.mode_run_left = 1 + self.rng.geometric_with(self.mode_denom);
        }
        self.mode_run_left -= 1;
    }

    fn advance_process(&mut self) {
        if self.spec.processes > 1 {
            self.since_switch += 1;
            if self.since_switch >= self.spec.ctx_interval {
                self.since_switch = 0;
                self.cur_proc = (self.cur_proc + 1) % self.procs.len();
            }
        }
    }

    fn sample_compute_op(&mut self) -> OpClass {
        if self.rng.chance(self.spec.fp_frac) {
            if self.rng.chance(self.spec.fp_long_frac) {
                if self.rng.chance(0.15) {
                    OpClass::FpSqrt
                } else {
                    OpClass::FpDiv
                }
            } else if self.rng.chance(0.5) {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            }
        } else if self.rng.chance(self.spec.int_long_frac) {
            if self.rng.chance(0.1) {
                OpClass::IntDiv
            } else {
                OpClass::IntMul
            }
        } else {
            OpClass::IntAlu
        }
    }

    fn dep_src(&mut self, id: InstId) -> Option<InstId> {
        // `geometric(1.0)` is the drawless constant 1; otherwise sample
        // through the cached denominator (bit-identical to `geometric`).
        let distance = match self.dep_denom {
            None => 1,
            Some(denom) => self.rng.geometric_with(denom),
        };
        id.back(distance)
    }

    /// Draw-parity stand-in for [`WorkloadGen::dep_src`] when the sampled
    /// producer is discarded (warm-up): consumes the identical randomness
    /// without the two `ln` calls.
    fn skip_dep_src(&mut self) {
        if self.dep_denom.is_some() {
            let _ = self.rng.next_u64();
        }
    }

    /// Samples a source operand: a recent load with probability
    /// `load_use_prob`, otherwise a geometrically distant producer.
    fn value_src(&mut self, id: InstId) -> Option<InstId> {
        if !self.recent_loads.is_empty() && self.rng.chance(self.spec.load_use_prob) {
            // Mostly the very latest load (classic load-use), occasionally
            // a slightly older one.
            let i = if self.rng.chance(0.7) {
                self.recent_loads.len() - 1
            } else {
                self.rng.below(self.recent_loads.len() as u64) as usize
            };
            return Some(self.recent_loads[i]);
        }
        self.dep_src(id)
    }

    /// Draw-parity stand-in for [`WorkloadGen::value_src`] when the result
    /// is discarded: the `&&` short-circuit and the branch on the first
    /// draw are replicated exactly, because both gate further draws.
    fn skip_value_src(&mut self) {
        if !self.recent_loads.is_empty() && self.rng.chance(self.spec.load_use_prob) {
            if !self.rng.chance(0.7) {
                let _ = self.rng.below(self.recent_loads.len() as u64);
            }
        } else {
            self.skip_dep_src();
        }
    }

    /// Draw-parity stand-in for [`WorkloadGen::sample_compute_op`]: every
    /// chance gates the next, so the full tree is walked with the sampled
    /// opcode discarded.
    fn skip_compute_op(&mut self) {
        if self.rng.chance(self.spec.fp_frac) {
            if self.rng.chance(self.spec.fp_long_frac) {
                let _ = self.rng.chance(0.15);
            } else {
                let _ = self.rng.chance(0.5);
            }
        } else if self.rng.chance(self.spec.int_long_frac) {
            let _ = self.rng.chance(0.1);
        }
    }

    fn note_load(&mut self, id: InstId) {
        if self.recent_loads.len() == 8 {
            self.recent_loads.pop_front();
        }
        self.recent_loads.push_back(id);
    }

    /// Generates the next instruction (never `None`; exposed for callers
    /// that want a non-iterator interface).
    pub fn next_inst(&mut self) -> DynInst {
        self.advance_mode();
        self.advance_process();
        let id = InstId::new(self.next_id);
        self.next_id += 1;
        let mode = self.cur_mode;

        let u = self.rng.next_f64() * 100.0;
        let load_cut = self.spec.table2.load_pct;
        let store_cut = load_cut + self.spec.table2.store_pct;
        let branch_cut = store_cut + self.spec.branch_frac * 100.0;

        let state_idx = if mode == ExecMode::Kernel { None } else { Some(self.cur_proc) };

        if u < store_cut {
            // Memory operation: pick a pattern in the current mode's space.
            // Split the RNG borrow: choose pattern index first.
            let (pat_idx, addr, dependent) = {
                let rng = &mut self.rng;
                let state = match state_idx {
                    None => &mut self.kernel,
                    Some(p) => &mut self.procs[p],
                };
                let idx = state.pick(rng);
                let dependent = state.patterns[idx].spec().is_dependent();
                let addr = state.patterns[idx].next_addr(rng);
                (idx, addr, dependent)
            };
            let _ = pat_idx;
            let is_load = u < load_cut;
            let op = if is_load { OpClass::Load } else { OpClass::Store };
            let mut inst = DynInst::new(id, op, mode).with_addr(addr);
            if is_load {
                self.note_load(id);
            }
            if is_load && dependent {
                let state = match state_idx {
                    None => &mut self.kernel,
                    Some(p) => &mut self.procs[p],
                };
                if let Some(prev) = state.last_chase {
                    inst = inst.with_src(prev);
                }
                state.last_chase = Some(id);
            } else {
                // Address (and for stores, data) computed from earlier work.
                if let Some(s) = self.dep_src(id) {
                    inst = inst.with_src(s);
                }
                if !is_load {
                    if let Some(s) = self.value_src(id) {
                        if inst.srcs()[1].is_none() && Some(s) != inst.srcs()[0] {
                            inst = inst.with_src(s);
                        }
                    }
                }
            }
            inst
        } else if u < branch_cut {
            let is_jump = self.rng.chance(JUMP_FRAC);
            let (op, taken, mispredicted) = if is_jump {
                (OpClass::Jump, true, self.rng.chance(JUMP_MISPREDICT))
            } else {
                (
                    OpClass::Branch,
                    self.rng.chance(self.spec.taken_frac),
                    self.rng.chance(1.0 - self.spec.branch_accuracy),
                )
            };
            let mut inst = DynInst::new(id, op, mode).with_branch(taken, mispredicted);
            if let Some(s) = self.value_src(id) {
                inst = inst.with_src(s);
            }
            inst
        } else {
            let op = self.sample_compute_op();
            let mut inst = DynInst::new(id, op, mode);
            if let Some(s) = self.value_src(id) {
                inst = inst.with_src(s);
            }
            if self.rng.chance(self.spec.two_src_prob) {
                if let Some(s) = self.dep_src(id) {
                    if inst.srcs()[1].is_none() && Some(s) != inst.srcs()[0] {
                        inst = inst.with_src(s);
                    }
                }
            }
            inst
        }
    }

    /// The warm-up fast path: advances the generator by exactly one
    /// instruction — identical RNG draws, ids, mode/process/pattern
    /// cursors, `recent_loads` and chase state as [`WorkloadGen::next_inst`]
    /// — and returns only the memory address (`None` for non-memory
    /// instructions), skipping the [`DynInst`] assembly and the discarded
    /// dependency-distance logarithms.
    ///
    /// Interleaving `next_warm` and `next_inst` in any order yields the
    /// same stream as calling `next_inst` alone: functional cache warming
    /// can run here without perturbing the measured phase.
    pub fn next_warm(&mut self) -> Option<u64> {
        self.advance_mode();
        self.advance_process();
        let id = InstId::new(self.next_id);
        self.next_id += 1;
        let mode = self.cur_mode;

        let u = self.rng.next_f64() * 100.0;
        let load_cut = self.spec.table2.load_pct;
        let store_cut = load_cut + self.spec.table2.store_pct;
        let branch_cut = store_cut + self.spec.branch_frac * 100.0;

        let state_idx = if mode == ExecMode::Kernel { None } else { Some(self.cur_proc) };

        if u < store_cut {
            let (addr, dependent) = {
                let rng = &mut self.rng;
                let state = match state_idx {
                    None => &mut self.kernel,
                    Some(p) => &mut self.procs[p],
                };
                let idx = state.pick(rng);
                let dependent = state.patterns[idx].spec().is_dependent();
                let addr = state.patterns[idx].next_addr(rng);
                (addr, dependent)
            };
            let is_load = u < load_cut;
            if is_load {
                self.note_load(id);
            }
            if is_load && dependent {
                let state = match state_idx {
                    None => &mut self.kernel,
                    Some(p) => &mut self.procs[p],
                };
                state.last_chase = Some(id);
            } else {
                self.skip_dep_src();
                if !is_load {
                    self.skip_value_src();
                }
            }
            Some(addr)
        } else if u < branch_cut {
            if self.rng.chance(JUMP_FRAC) {
                let _ = self.rng.chance(JUMP_MISPREDICT);
            } else {
                let _ = self.rng.chance(self.spec.taken_frac);
                let _ = self.rng.chance(1.0 - self.spec.branch_accuracy);
            }
            self.skip_value_src();
            None
        } else {
            self.skip_compute_op();
            self.skip_value_src();
            if self.rng.chance(self.spec.two_src_prob) {
                self.skip_dep_src();
            }
            None
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        Some(self.next_inst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let gen = WorkloadGen::new(Benchmark::Li, 3);
        for (i, inst) in gen.take(500).enumerate() {
            assert_eq!(inst.id().get(), i as u64);
        }
    }

    #[test]
    fn warm_path_keeps_full_parity() {
        for bench in [Benchmark::Gcc, Benchmark::Li, Benchmark::Tomcatv, Benchmark::Database] {
            let mut fast = WorkloadGen::new(bench, 9);
            let mut slow = WorkloadGen::new(bench, 9);
            // Same addresses in the warm phase...
            for i in 0..20_000 {
                assert_eq!(fast.next_warm(), slow.next_inst().addr(), "{bench} diverged at {i}");
            }
            // ...and identical instructions (ids, sources, chase state,
            // recent-load seeding) ever after.
            for i in 0..5_000 {
                assert_eq!(fast.next_inst(), slow.next_inst(), "{bench} tail diverged at {i}");
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = WorkloadGen::new(Benchmark::Database, 9).take(2000).collect();
        let b: Vec<_> = WorkloadGen::new(Benchmark::Database, 9).take(2000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = WorkloadGen::new(Benchmark::Gcc, 1).take(200).collect();
        let b: Vec<_> = WorkloadGen::new(Benchmark::Gcc, 2).take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_tracks_table2() {
        for bench in [Benchmark::Gcc, Benchmark::Tomcatv, Benchmark::Database] {
            let spec = bench.spec();
            let n = 60_000;
            let insts: Vec<_> = WorkloadGen::new(bench, 5).take(n).collect();
            let pct = |f: &dyn Fn(&DynInst) -> bool| {
                100.0 * insts.iter().filter(|i| f(i)).count() as f64 / n as f64
            };
            let loads = pct(&|i| i.op().is_load());
            let stores = pct(&|i| i.op().is_store());
            assert!((loads - spec.table2.load_pct).abs() < 1.5, "{bench}: loads {loads}");
            assert!((stores - spec.table2.store_pct).abs() < 1.0, "{bench}: stores {stores}");
        }
    }

    #[test]
    fn memory_ops_have_addresses() {
        for inst in WorkloadGen::new(Benchmark::Vcs, 7).take(5000) {
            if inst.is_mem() {
                assert!(inst.addr().is_some());
            } else {
                assert!(inst.addr().is_none());
            }
        }
    }

    #[test]
    fn kernel_fraction_matches_spec() {
        let bench = Benchmark::Database; // 52% of non-idle time in kernel
        let n = 400_000;
        let kernel =
            WorkloadGen::new(bench, 11).take(n).filter(|i| i.mode() == ExecMode::Kernel).count();
        let frac = kernel as f64 / n as f64;
        let expect = bench.spec().table2.kernel_frac();
        assert!((frac - expect).abs() < 0.06, "kernel frac {frac} vs {expect}");
    }

    #[test]
    fn fp_benchmarks_emit_fp_ops() {
        let fp_ops =
            WorkloadGen::new(Benchmark::Tomcatv, 1).take(20_000).filter(|i| i.op().is_fp()).count();
        assert!(fp_ops > 5000, "tomcatv should be fp-heavy, got {fp_ops}");
        let int_fp =
            WorkloadGen::new(Benchmark::Li, 1).take(20_000).filter(|i| i.op().is_fp()).count();
        assert!(int_fp < 200, "li should be almost fp-free, got {int_fp}");
    }

    #[test]
    fn branch_misprediction_rate_tracks_accuracy() {
        let spec = Benchmark::Gcc.spec();
        let branches: Vec<_> = WorkloadGen::new(Benchmark::Gcc, 2)
            .take(200_000)
            .filter(|i| i.op() == OpClass::Branch)
            .collect();
        let mis = branches.iter().filter(|b| b.mispredicted()).count() as f64;
        let rate = mis / branches.len() as f64;
        assert!((rate - (1.0 - spec.branch_accuracy)).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn chase_loads_depend_on_previous_chase() {
        // li has a pointer-chase pattern; some loads must depend on earlier
        // loads (not just nearby compute).
        let insts: Vec<_> = WorkloadGen::new(Benchmark::Li, 4).take(50_000).collect();
        let load_ids: std::collections::BTreeSet<u64> =
            insts.iter().filter(|i| i.op().is_load()).map(|i| i.id().get()).collect();
        let dependent_loads = insts
            .iter()
            .filter(|i| i.op().is_load())
            .filter(|i| i.srcs()[0].map(|s| load_ids.contains(&s.get())).unwrap_or(false))
            .count();
        assert!(dependent_loads > 500, "expected chase loads, got {dependent_loads}");
    }

    #[test]
    fn processes_partition_address_space() {
        // database runs two processes; user addresses must appear in two
        // distinct high-bit regions (pmake likewise).
        let spaces_of = |b: Benchmark| {
            let mut spaces = std::collections::BTreeSet::new();
            for inst in WorkloadGen::new(b, 6).take(300_000) {
                if inst.mode() == ExecMode::User {
                    if let Some(a) = inst.addr() {
                        spaces.insert(a >> 33);
                    }
                }
            }
            spaces.len() as u32
        };
        assert_eq!(spaces_of(Benchmark::Database), Benchmark::Database.spec().processes);
        assert_eq!(spaces_of(Benchmark::Gcc), 1);
    }

    #[test]
    #[should_panic(expected = "invalid benchmark spec")]
    fn invalid_spec_rejected() {
        let mut spec = Benchmark::Gcc.spec();
        spec.user_mem.clear();
        let _ = WorkloadGen::from_spec(spec, 1);
    }
}
