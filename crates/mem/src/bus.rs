//! Bandwidth-limited transfer channels.

/// A bus with finite bandwidth, modeled as serialized occupancy: each
/// transfer holds the bus for `bytes / bytes_per_cycle` cycles and later
/// transfers queue behind it.
///
/// The paper's machine has 2.5 GB/s between processor die and L2
/// (12.5 bytes/cycle at 200 MHz) and 1.6 GB/s between L2 and memory
/// (8 bytes/cycle).
///
/// # Example
///
/// ```
/// use hbc_mem::Bus;
///
/// let mut bus = Bus::new(8.0);
/// // A 64-byte line holds the bus for 8 cycles.
/// assert_eq!(bus.reserve(100, 64), 100); // starts immediately
/// assert_eq!(bus.reserve(100, 64), 108); // queues behind the first
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bus {
    bytes_per_cycle: f64,
    free_at: u64,
    busy_cycles: u64,
    transfers: u64,
}

impl Bus {
    /// Creates a bus transferring `bytes_per_cycle` bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bus bandwidth must be positive");
        Bus { bytes_per_cycle, free_at: 0, busy_cycles: 0, transfers: 0 }
    }

    /// Bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Cycles a transfer of `bytes` occupies the bus (at least one).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        ((bytes as f64 / self.bytes_per_cycle).ceil() as u64).max(1)
    }

    /// Reserves the bus for `bytes` starting no earlier than `now`;
    /// returns the cycle the transfer actually starts.
    pub fn reserve(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.free_at);
        let dur = self.transfer_cycles(bytes);
        self.free_at = start + dur;
        self.busy_cycles += dur;
        self.transfers += 1;
        start
    }

    /// First cycle at which the bus is free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// The cycle the bus next changes state on its own — the in-flight
    /// queue draining — if that is still in the future.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (self.free_at > now).then_some(self.free_at)
    }

    /// Total cycles of occupancy so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        let chip_l2 = Bus::new(12.5);
        assert_eq!(chip_l2.transfer_cycles(32), 3); // 32 B line in 2.56 -> 3
        let l2_mem = Bus::new(8.0);
        assert_eq!(l2_mem.transfer_cycles(64), 8);
    }

    #[test]
    fn queuing_delays_later_transfers() {
        let mut bus = Bus::new(8.0);
        assert_eq!(bus.reserve(10, 64), 10);
        assert_eq!(bus.reserve(12, 64), 18);
        assert_eq!(bus.reserve(40, 8), 40); // bus idle again by then
        assert_eq!(bus.transfers(), 3);
        assert_eq!(bus.busy_cycles(), 17);
    }

    #[test]
    fn minimum_one_cycle() {
        let bus = Bus::new(100.0);
        assert_eq!(bus.transfer_cycles(1), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bus::new(0.0);
    }

    mod properties {
        use super::*;

        /// Transfers serialize: each starts no earlier than requested
        /// and no earlier than the previous transfer ended, and total
        /// occupancy equals the sum of the individual durations.
        #[test]
        fn reservations_never_overlap() {
            hbc_ptest::check_default("reservations_never_overlap", |g| {
                let reqs = g.vec(1, 50, |g| (g.u64_below(10_000), g.u64_in(1, 511)));
                let mut bus = Bus::new(8.0);
                let mut last_end = 0u64;
                let mut expect_busy = 0u64;
                let mut now = 0u64;
                for (gap, bytes) in reqs {
                    now += gap;
                    let start = bus.reserve(now, bytes);
                    assert!(start >= now);
                    assert!(start >= last_end, "transfer started on a busy bus");
                    last_end = start + bus.transfer_cycles(bytes);
                    expect_busy += bus.transfer_cycles(bytes);
                }
                assert_eq!(bus.busy_cycles(), expect_busy);
                assert_eq!(bus.free_at(), last_end);
            });
        }
    }
}
