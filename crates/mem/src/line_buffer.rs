//! The line buffer: a small fully associative level-zero cache in the
//! load/store execution unit (paper Section 2.3, [Wils96]).

use crate::addr::line_index;
use hbc_probe::saturating_count;

/// A fully associative, multi-ported line buffer with LRU replacement.
///
/// Loads that hit return in a single cycle without occupying a cache port;
/// this both raises effective port bandwidth and hides the latency of
/// pipelined caches. The paper's configuration is 32 entries.
///
/// # Example
///
/// ```
/// use hbc_mem::LineBuffer;
///
/// let mut lb = LineBuffer::new(32, 32);
/// assert!(!lb.probe(0x400));
/// lb.fill(0x400);
/// assert!(lb.probe(0x41f)); // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct LineBuffer {
    entries: usize,
    line_bytes: u64,
    /// Resident line indices in recency order: LRU at the front, MRU at
    /// the back. Per-entry use stamps would order entries identically
    /// (stamps increase strictly), but the explicit order makes eviction a
    /// front-removal instead of a second scan of the buffer.
    lines: Vec<u64>,
    hits: u64,
    lookups: u64,
}

impl LineBuffer {
    /// Creates a line buffer of `entries` lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `line_bytes` is not a power of two.
    pub fn new(entries: usize, line_bytes: u64) -> Self {
        assert!(entries > 0, "line buffer needs at least one entry");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        LineBuffer { entries, line_bytes, lines: Vec::with_capacity(entries), hits: 0, lookups: 0 }
    }

    /// Capacity in entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Looks up `addr`; on a hit refreshes LRU and returns `true`.
    pub fn lookup(&mut self, addr: u64) -> bool {
        saturating_count(&mut self.lookups, 1);
        let line = line_index(addr, self.line_bytes);
        if let Some(i) = self.position(line) {
            self.make_mru(i);
            saturating_count(&mut self.hits, 1);
            true
        } else {
            false
        }
    }

    /// The recency-list position of `line`, scanning MRU-first (temporal
    /// locality means hits cluster at the recent end).
    fn position(&self, line: u64) -> Option<usize> {
        self.lines.iter().rposition(|l| *l == line)
    }

    /// Moves the entry at `i` to the MRU end, preserving the order of the
    /// rest.
    fn make_mru(&mut self, i: usize) {
        let line = self.lines.remove(i);
        self.lines.push(line);
    }

    /// `true` if `addr`'s line is resident (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        self.position(line_index(addr, self.line_bytes)).is_some()
    }

    /// Inserts `addr`'s line (typically when load data returns from the
    /// cache), evicting the LRU entry if full.
    pub fn fill(&mut self, addr: u64) {
        let line = line_index(addr, self.line_bytes);
        if let Some(i) = self.position(line) {
            self.make_mru(i);
            return;
        }
        if self.lines.len() == self.entries {
            self.lines.remove(0); // the LRU entry is the front of the list
        }
        self.lines.push(line);
    }

    /// Removes `addr`'s line if present (store invalidation / L1 eviction).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = line_index(addr, self.line_bytes);
        if let Some(i) = self.position(line) {
            self.lines.remove(i);
            true
        } else {
            false
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup count.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// The line buffer is untimed (hits complete in the following cycle,
    /// priced by the memory system), so it never schedules an event.
    pub fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }

    /// Sanitizer: the resident line indices (unordered).
    #[cfg(feature = "sanitize")]
    pub(crate) fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines.iter().copied()
    }

    /// Sanitizer: entry size in bytes.
    #[cfg(feature = "sanitize")]
    pub(crate) fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Sanitizer: panics if occupancy exceeds capacity or lines duplicate.
    #[cfg(feature = "sanitize")]
    pub(crate) fn assert_sane(&self) {
        assert!(
            self.lines.len() <= self.entries,
            "sanitize: line buffer holds {} lines with only {} entries",
            self.lines.len(),
            self.entries
        );
        for (i, line) in self.lines.iter().enumerate() {
            assert!(
                !self.lines[..i].contains(line),
                "sanitize: duplicate line-buffer entries for line {line}"
            );
        }
    }

    /// Hit ratio over all lookups (zero when never used).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut lb = LineBuffer::new(4, 32);
        assert!(!lb.lookup(0x100));
        lb.fill(0x100);
        assert!(lb.lookup(0x110));
        assert_eq!(lb.hits(), 1);
        assert_eq!(lb.lookups(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut lb = LineBuffer::new(2, 32);
        lb.fill(0);
        lb.fill(32);
        assert!(lb.lookup(0)); // line 0 now most recent
        lb.fill(2 * 32); // evicts line 1
        assert!(lb.probe(0));
        assert!(!lb.probe(32));
        assert!(lb.probe(64));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut lb = LineBuffer::new(2, 32);
        lb.fill(0);
        lb.fill(0);
        lb.fill(32);
        lb.fill(64); // should evict line 0's competitor, not overflow
        assert!(lb.lines.len() <= 2);
    }

    #[test]
    fn invalidate() {
        let mut lb = LineBuffer::new(4, 32);
        lb.fill(0x200);
        assert!(lb.invalidate(0x200));
        assert!(!lb.probe(0x200));
        assert!(!lb.invalidate(0x200));
    }

    #[test]
    fn hit_ratio_tracks() {
        let mut lb = LineBuffer::new(4, 32);
        lb.fill(0);
        assert!(lb.lookup(0));
        assert!(!lb.lookup(0x1000));
        assert!((lb.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(LineBuffer::new(1, 32).hit_ratio(), 0.0);
    }

    #[test]
    fn sequential_words_hit_after_first() {
        // The spatial-locality effect the paper relies on: a stride-8 sweep
        // hits the line buffer three times per 32-byte line.
        let mut lb = LineBuffer::new(32, 32);
        let mut hits = 0;
        for i in 0..128u64 {
            if lb.lookup(i * 8) {
                hits += 1;
            } else {
                lb.fill(i * 8);
            }
        }
        assert_eq!(hits, 96); // 3 of every 4 accesses
    }
}
