//! The complete on-chip memory system (paper Figure 2).

use crate::addr::line_index;
use crate::bus::Bus;
use crate::cache::CacheArray;
use crate::config::{ConfigError, MemConfig, SecondLevel};
use crate::line_buffer::LineBuffer;
use crate::mshr::MshrFile;
use crate::ports::{PortDenied, PortTracker};
use crate::stats::MemStats;
use crate::store_buffer::StoreBuffer;
use hbc_probe::{saturating_count, ProbeExport, ProbeRegistry};

/// Why the memory system could not accept a load this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// All cache ports are servicing accesses this cycle.
    PortsBusy,
    /// The addressed bank is busy this cycle (banked caches).
    BankConflict,
    /// All miss status handling registers are occupied.
    MshrFull,
}

/// Outcome of presenting a load to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadResponse {
    /// Satisfied by the line buffer without touching a cache port; data
    /// available at `complete_at` (one cycle).
    LineBufferHit {
        /// Absolute cycle the data is available.
        complete_at: u64,
    },
    /// Primary-cache hit through a port.
    Hit {
        /// Absolute cycle the data is available (`now + hit_cycles`).
        complete_at: u64,
    },
    /// Primary-cache miss; the lock-up-free cache continues servicing other
    /// accesses while the fill is outstanding.
    Miss {
        /// Absolute cycle the fill (and therefore this load) completes.
        complete_at: u64,
    },
    /// Not accepted this cycle; retry next cycle.
    Rejected(RejectReason),
}

impl LoadResponse {
    /// The completion cycle, if the load was accepted.
    pub fn complete_at(&self) -> Option<u64> {
        match *self {
            LoadResponse::LineBufferHit { complete_at }
            | LoadResponse::Hit { complete_at }
            | LoadResponse::Miss { complete_at } => Some(complete_at),
            LoadResponse::Rejected(_) => None,
        }
    }
}

/// The memory hierarchy: optional line buffer, lock-up-free multi-ported
/// primary data cache, second level (off-chip SRAM L2 or on-chip DRAM
/// cache), bandwidth-limited buses, and main memory.
///
/// Drive it one cycle at a time:
///
/// 1. [`MemSystem::begin_cycle`] — retires completed fills, frees ports;
/// 2. any number of [`MemSystem::try_load`] / [`MemSystem::commit_store`];
/// 3. [`MemSystem::end_cycle`] — drains buffered stores into idle ports.
///
/// # Example
///
/// ```
/// use hbc_mem::{LoadResponse, MemConfig, MemSystem, PortModel};
///
/// let cfg = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate);
/// let mut mem = MemSystem::new(cfg)?;
/// mem.begin_cycle(100);
/// // A cold access misses and reports when its fill completes.
/// match mem.try_load(0x4000) {
///     LoadResponse::Miss { complete_at } => assert!(complete_at > 100),
///     other => panic!("expected a miss, got {other:?}"),
/// }
/// mem.end_cycle();
/// # Ok::<(), hbc_mem::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: CacheArray,
    l2: CacheArray,
    lb: Option<LineBuffer>,
    mshrs: MshrFile,
    ports: PortTracker,
    stores: StoreBuffer,
    chip_bus: Bus,
    mem_bus: Bus,
    now: u64,
    stats: MemStats,
    /// Whether the line buffer holds whole L1 lines, so L1 evictions must
    /// invalidate it (hoisted out of the per-eviction hot path).
    lb_mirrors_l1: bool,
}

impl MemSystem {
    /// Builds a memory system from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint if `cfg` is inconsistent.
    pub fn new(cfg: MemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let (l2_size, l2_assoc, l2_line) = match cfg.l2 {
            SecondLevel::Sram { size_bytes, assoc, line_bytes, .. }
            | SecondLevel::Dram { size_bytes, assoc, line_bytes, .. } => {
                (size_bytes, assoc, line_bytes)
            }
        };
        Ok(MemSystem {
            l1: CacheArray::new(cfg.l1.size_bytes, cfg.l1.assoc, cfg.l1.line_bytes),
            l2: CacheArray::new(l2_size, l2_assoc, l2_line),
            lb: cfg.l1.line_buffer.map(|c| LineBuffer::new(c.entries, c.line_bytes)),
            mshrs: MshrFile::new(cfg.l1.mshrs),
            ports: PortTracker::new(cfg.l1.ports, cfg.l1.line_bytes),
            stores: StoreBuffer::new(cfg.store_buffer),
            chip_bus: Bus::new(cfg.chip_bus_bytes_per_cycle),
            mem_bus: Bus::new(cfg.mem_bus_bytes_per_cycle),
            now: 0,
            stats: MemStats::default(),
            lb_mirrors_l1: cfg.l1.line_buffer.map(|c| c.line_bytes) == Some(cfg.l1.line_bytes),
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Starts cycle `now`: retires completed fills and frees the ports.
    pub fn begin_cycle(&mut self, now: u64) {
        debug_assert!(now >= self.now, "cycles must be monotone");
        #[cfg(feature = "sanitize")]
        assert!(now >= self.now, "sanitize: cycle went backwards ({} after {})", now, self.now);
        self.now = now;
        self.mshrs.retire(now);
        self.ports.begin_cycle();
        #[cfg(feature = "sanitize")]
        self.assert_invariants();
    }

    /// Presents a load to `addr`.
    ///
    /// Rejected loads consumed no resources and should be retried next
    /// cycle. Accepted loads report their absolute completion cycle; the
    /// caller is responsible for waking dependents then.
    pub fn try_load(&mut self, addr: u64) -> LoadResponse {
        saturating_count(&mut self.stats.load_requests, 1);
        let line = line_index(addr, self.cfg.l1.line_bytes);
        // A line whose fill is still outstanding reads as present in the tag
        // array (fills update tags at allocation time), so the MSHR file is
        // consulted first: accesses to in-flight lines are secondary misses
        // and must not be short-circuited by the (optimistically filled)
        // line buffer either.
        let merge_with = self.mshrs.pending(line);
        if merge_with.is_none() {
            if let Some(lb) = &mut self.lb {
                if lb.lookup(addr) {
                    saturating_count(&mut self.stats.lb_hits, 1);
                    return LoadResponse::LineBufferHit { complete_at: self.now + 1 };
                }
            }
        }
        let would_hit = merge_with.is_none() && self.l1.probe(addr);
        if !would_hit && merge_with.is_none() && self.mshrs.in_flight() == self.mshrs.capacity() {
            saturating_count(&mut self.stats.mshr_rejections, 1);
            return LoadResponse::Rejected(RejectReason::MshrFull);
        }
        if let Err(denied) = self.ports.acquire_load(addr) {
            saturating_count(&mut self.stats.load_rejections, 1);
            return LoadResponse::Rejected(match denied {
                PortDenied::PortsBusy => RejectReason::PortsBusy,
                PortDenied::BankConflict => RejectReason::BankConflict,
            });
        }
        let touch = self.l1.touch_evict(addr);
        self.fill_line_buffer(addr, touch.evicted);
        if would_hit {
            saturating_count(&mut self.stats.l1_load_hits, 1);
            return LoadResponse::Hit { complete_at: self.now + self.cfg.l1.hit_cycles };
        }
        saturating_count(&mut self.stats.l1_load_misses, 1);
        let miss_seen_at = self.now + self.cfg.l1.hit_cycles;
        let complete_at = match merge_with {
            Some(fill_at) => {
                self.mshrs.note_merge();
                saturating_count(&mut self.stats.miss_merges, 1);
                fill_at.max(miss_seen_at)
            }
            None => {
                let fill_at = self.fill_from_below(addr, miss_seen_at);
                self.mshrs
                    .allocate(line, fill_at)
                    .expect("MSHR availability was checked before the port");
                fill_at
            }
        };
        LoadResponse::Miss { complete_at }
    }

    /// Accepts a committed store into the store buffer; returns `false`
    /// when the buffer is full (the caller must stall commit and retry).
    pub fn commit_store(&mut self, addr: u64) -> bool {
        if self.stores.push(addr) {
            saturating_count(&mut self.stats.stores, 1);
            true
        } else {
            false
        }
    }

    /// Ends the cycle: drains buffered stores into whatever port slots the
    /// loads left idle.
    pub fn end_cycle(&mut self) {
        while let Some(addr) = self.stores.peek() {
            let line = line_index(addr, self.cfg.l1.line_bytes);
            let merged = self.mshrs.pending(line).is_some();
            let hit = !merged && self.l1.probe(addr);
            if !hit && !merged && self.mshrs.in_flight() == self.mshrs.capacity() {
                break; // write-allocate needs an MSHR; retry next cycle
            }
            if self.ports.acquire_store(addr).is_err() {
                break;
            }
            self.stores.pop();
            let touch = self.l1.touch_evict(addr);
            if !hit {
                saturating_count(&mut self.stats.store_misses, 1);
                if merged {
                    self.mshrs.note_merge();
                    saturating_count(&mut self.stats.miss_merges, 1);
                } else {
                    let fill_at = self.fill_from_below(addr, self.now + self.cfg.l1.hit_cycles);
                    self.mshrs
                        .allocate(line, fill_at)
                        .expect("MSHR availability was checked before the port");
                }
            }
            if let Some(evicted) = touch.evicted {
                self.invalidate_lb_line(evicted);
            }
        }
        #[cfg(feature = "sanitize")]
        self.assert_invariants();
    }

    /// Sanitizer: checks the cross-component invariants the cycle protocol
    /// is supposed to maintain. Called from [`MemSystem::begin_cycle`] and
    /// [`MemSystem::end_cycle`] in `sanitize` builds; any violation is a
    /// simulator bug, so it panics.
    #[cfg(feature = "sanitize")]
    fn assert_invariants(&self) {
        // Ports: a cycle can never hand out more accesses than the model's
        // peak bandwidth.
        let peak = self.cfg.l1.ports.peak_per_cycle();
        assert!(
            self.ports.used() <= peak,
            "sanitize: {} port grants in one cycle exceed the peak of {peak}",
            self.ports.used()
        );
        // MSHRs: bounded, unique, and retired promptly (leak detection).
        self.mshrs.assert_sane(self.now);
        // Store buffer: bounded by its configured depth.
        assert!(
            self.stores.len() <= self.cfg.store_buffer,
            "sanitize: {} buffered stores exceed the {}-entry store buffer",
            self.stores.len(),
            self.cfg.store_buffer
        );
        // Line buffer: bounded and duplicate-free; and when its entries are
        // whole L1 lines, every resident line must still be resident in the
        // L1 (evictions invalidate it), keeping the two levels coherent.
        if let Some(lb) = &self.lb {
            lb.assert_sane();
            if lb.line_bytes() == self.cfg.l1.line_bytes {
                for line in lb.resident_lines() {
                    let addr = line * self.cfg.l1.line_bytes;
                    assert!(
                        self.l1.probe(addr),
                        "sanitize: line buffer holds line {line:#x} absent from the L1"
                    );
                }
            }
        }
    }

    /// Computes the absolute completion cycle of a primary-cache fill whose
    /// miss is detected at `t0`, reserving bus bandwidth along the way.
    fn fill_from_below(&mut self, addr: u64, t0: u64) -> u64 {
        let l1_line = self.cfg.l1.line_bytes;
        let l2_hit = self.l2.touch(addr);
        match self.cfg.l2 {
            SecondLevel::Sram { hit_cycles, .. } => {
                if l2_hit {
                    saturating_count(&mut self.stats.l2_hits, 1);
                    // The 10-cycle (50 ns) hit time covers the round trip;
                    // the chip bus is reserved for the line transfer so
                    // later fills queue behind it, but an uncontended bus
                    // adds no latency beyond the hit time.
                    let data_ready = t0 + hit_cycles;
                    let xfer = self.chip_bus.reserve(t0, l1_line);
                    data_ready.max(xfer + self.chip_bus.transfer_cycles(l1_line))
                } else {
                    saturating_count(&mut self.stats.l2_misses, 1);
                    let fetch = self.cfg.mem_fetch_bytes;
                    let mem_ready = t0 + hit_cycles + self.cfg.mem_latency;
                    let mem_xfer = self.mem_bus.reserve(mem_ready, fetch);
                    let l2_filled = mem_xfer + self.mem_bus.transfer_cycles(fetch);
                    let xfer = self.chip_bus.reserve(l2_filled, l1_line);
                    xfer + self.chip_bus.transfer_cycles(l1_line)
                }
            }
            SecondLevel::Dram { hit_cycles, .. } => {
                // The DRAM cache is on the processor die: its row buffers
                // are the row-buffer cache, so a hit costs only the DRAM
                // access and no bus transfer.
                if l2_hit {
                    saturating_count(&mut self.stats.l2_hits, 1);
                    t0 + hit_cycles
                } else {
                    saturating_count(&mut self.stats.l2_misses, 1);
                    let fetch = self.cfg.mem_fetch_bytes;
                    let mem_ready = t0 + hit_cycles + self.cfg.mem_latency;
                    let mem_xfer = self.mem_bus.reserve(mem_ready, fetch);
                    mem_xfer + self.mem_bus.transfer_cycles(fetch)
                }
            }
        }
    }

    fn fill_line_buffer(&mut self, addr: u64, l1_evicted: Option<u64>) {
        if let Some(lb) = &mut self.lb {
            lb.fill(addr);
        }
        if let Some(evicted) = l1_evicted {
            self.invalidate_lb_line(evicted);
        }
    }

    /// Invalidates the line-buffer copy of an evicted L1 line (only when
    /// the granularities coincide; the DRAM row cache's 512-byte rows span
    /// many 32-byte buffer entries and are left to LRU).
    fn invalidate_lb_line(&mut self, l1_line: u64) {
        if self.lb_mirrors_l1 {
            if let Some(lb) = &mut self.lb {
                lb.invalidate(l1_line * self.cfg.l1.line_bytes);
            }
        }
    }

    /// Functionally touches `addr` in every level without consuming ports,
    /// MSHRs, or bus bandwidth and without counting statistics.
    ///
    /// Used to pre-warm the hierarchy to the steady state a trace hundreds
    /// of millions of instructions long (as in the paper) would reach,
    /// before cycle-accurate measurement begins.
    pub fn warm_touch(&mut self, addr: u64) {
        let touch = self.l1.touch_evict(addr);
        self.l2.touch(addr);
        if let Some(lb) = &mut self.lb {
            lb.fill(addr);
        }
        if let Some(evicted) = touch.evicted {
            self.invalidate_lb_line(evicted);
        }
    }

    /// The memory system's event horizon: the earliest future cycle at
    /// which any component changes state on its own — an MSHR fill
    /// completing, a bus queue draining, or per-cycle port grants expiring.
    /// `None` when every component is quiescent.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        [
            self.mshrs.next_event(now),
            self.chip_bus.next_event(now),
            self.mem_bus.next_event(now),
            self.ports.next_event(now),
            self.stores.next_event(now),
            self.lb.as_ref().and_then(|lb| lb.next_event(now)),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// First cycle at or after `t` the oldest buffered store could drain,
    /// assuming the ports stay clear of loads from `t` on (the only state
    /// in which the event-horizon engine asks). `None` when the buffer is
    /// empty.
    ///
    /// With idle ports a store always wins a slot, so the one blocker left
    /// is write-allocate needing a register: a store whose line hits the L1
    /// or merges with an outstanding fill drains immediately; otherwise it
    /// waits for the first free MSHR.
    pub fn store_drain_at(&self, t: u64) -> Option<u64> {
        let addr = self.stores.peek()?;
        let line = line_index(addr, self.cfg.l1.line_bytes);
        if self.mshrs.pending(line).is_some_and(|c| c > t) || self.l1.probe(addr) {
            return Some(t);
        }
        Some(self.mshrs.free_at(t))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Line-buffer hit ratio over its lookups (zero without a line buffer).
    pub fn lb_hit_ratio(&self) -> f64 {
        self.lb.as_ref().map(|lb| lb.hit_ratio()).unwrap_or(0.0)
    }

    /// Lifetime bank-conflict count (banked caches).
    pub fn bank_conflicts(&self) -> u64 {
        self.ports.bank_conflicts()
    }

    /// Stores still waiting to drain.
    pub fn pending_stores(&self) -> usize {
        self.stores.len()
    }

    /// Outstanding misses.
    pub fn misses_in_flight(&self) -> usize {
        self.mshrs.in_flight()
    }
}

impl ProbeExport for MemSystem {
    /// Exports the [`MemStats`] counters plus the port-arbitration and
    /// line-buffer counters only the components themselves track.
    fn export_probes(&self, reg: &mut ProbeRegistry) {
        self.stats.export_probes(reg);
        reg.counter("mem.ports.bank_conflicts").set(self.ports.bank_conflicts());
        reg.counter("mem.ports.rejections").set(self.ports.port_rejections());
        reg.counter("mem.lb.lookups").set(self.lb.as_ref().map(|lb| lb.lookups()).unwrap_or(0));
        reg.counter("mem.store.pending").set(self.stores.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortModel;

    fn system(ports: PortModel, hit: u64, lb: bool) -> MemSystem {
        let mut cfg = MemConfig::paper_sram(32 << 10, hit, ports);
        if lb {
            cfg = cfg.with_line_buffer();
        }
        MemSystem::new(cfg).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = system(PortModel::Ideal(2), 1, false);
        m.begin_cycle(0);
        let r = m.try_load(0x1000);
        // Cold in both levels:
        // 1 (hit detect) + 10 (L2) + 60 (memory) + 8 (64 B over 8 B/c)
        // + 3 (32 B over 12.5 B/c chip bus) = 82.
        assert_eq!(r.complete_at(), Some(82));
        assert_eq!(m.stats().l2_misses, 1);
        m.end_cycle();
        // Once resident, the same line is a one-cycle-hit-time L1 hit.
        m.begin_cycle(200);
        match m.try_load(0x1000) {
            LoadResponse::Hit { complete_at } => assert_eq!(complete_at, 201),
            other => panic!("{other:?}"),
        }
        m.end_cycle();
        // A different L1 line in the same (now warm) 64-byte L2 line: the
        // 10-cycle hit covers the transfer on an uncontended bus, so
        // 1 + 10 = 11 cycles.
        m.begin_cycle(300);
        match m.try_load(0x1020) {
            LoadResponse::Miss { complete_at } => assert_eq!(complete_at, 311),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats().l2_hits, 1);
        m.end_cycle();
    }

    #[test]
    fn line_buffer_catches_spatial_reuse() {
        let mut m = system(PortModel::Duplicate, 2, true);
        m.begin_cycle(0);
        assert!(matches!(m.try_load(0x3000), LoadResponse::Miss { .. }));
        m.end_cycle();
        // After the fill completes, the same 32-byte line is in the line
        // buffer and returns in one cycle without touching a port.
        m.begin_cycle(100);
        match m.try_load(0x3008) {
            LoadResponse::LineBufferHit { complete_at } => assert_eq!(complete_at, 101),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats().lb_hits, 1);
    }

    #[test]
    fn ports_limit_loads_per_cycle() {
        let mut m = system(PortModel::Duplicate, 1, false);
        // Warm three distinct lines (fills take ~82 cycles when cold).
        for (i, a) in [0x100u64, 0x200, 0x300].iter().enumerate() {
            m.begin_cycle(i as u64 * 100);
            m.try_load(*a);
            m.end_cycle();
        }
        m.begin_cycle(1000);
        assert!(matches!(m.try_load(0x100), LoadResponse::Hit { .. }));
        assert!(matches!(m.try_load(0x200), LoadResponse::Hit { .. }));
        assert_eq!(m.try_load(0x300), LoadResponse::Rejected(RejectReason::PortsBusy));
        m.end_cycle();
    }

    #[test]
    fn banked_cache_conflicts_within_cycle() {
        let mut m = system(PortModel::Banked(8), 1, false);
        // Warm two lines in the same bank (0x000 and 0x100 are both bank 0).
        m.begin_cycle(0);
        m.try_load(0x000);
        m.end_cycle();
        m.begin_cycle(100);
        m.try_load(0x100);
        m.end_cycle();
        m.begin_cycle(1000);
        assert!(matches!(m.try_load(0x000), LoadResponse::Hit { .. }));
        assert_eq!(m.try_load(0x100), LoadResponse::Rejected(RejectReason::BankConflict));
        // A different bank is still available.
        assert!(matches!(m.try_load(0x020), LoadResponse::Miss { .. }));
        m.end_cycle();
    }

    #[test]
    fn mshr_exhaustion_rejects_new_misses() {
        let mut m = system(PortModel::Ideal(4), 1, false);
        m.begin_cycle(0);
        for i in 0..4u64 {
            assert!(matches!(m.try_load(0x1_0000 + i * 32), LoadResponse::Miss { .. }));
        }
        m.end_cycle();
        m.begin_cycle(1);
        assert_eq!(
            m.try_load(0x9_0000),
            LoadResponse::Rejected(RejectReason::MshrFull),
            "fifth distinct miss needs a fifth MSHR"
        );
        // But a merge into an outstanding line is fine.
        assert!(matches!(m.try_load(0x1_0008), LoadResponse::Miss { .. }));
        assert_eq!(m.stats().miss_merges, 1);
        m.end_cycle();
        // After the fills complete, MSHRs free up.
        m.begin_cycle(200);
        assert!(matches!(m.try_load(0x9_0000), LoadResponse::Miss { .. }));
        m.end_cycle();
    }

    #[test]
    fn merged_loads_complete_with_the_fill() {
        let mut m = system(PortModel::Ideal(2), 1, false);
        m.begin_cycle(0);
        let first = m.try_load(0x5000).complete_at().unwrap();
        m.end_cycle();
        m.begin_cycle(3);
        let merged = m.try_load(0x5010).complete_at().unwrap();
        assert_eq!(merged, first, "secondary miss completes with the primary fill");
        m.end_cycle();
    }

    #[test]
    fn duplicate_stores_drain_only_into_idle_cycles() {
        let mut m = system(PortModel::Duplicate, 1, false);
        m.begin_cycle(0);
        assert!(m.commit_store(0x100));
        // Loads occupy the cache this cycle, so the store stays buffered.
        m.try_load(0x200);
        m.end_cycle();
        assert_eq!(m.pending_stores(), 1);
        // An idle cycle lets it drain into both copies.
        m.begin_cycle(1);
        m.end_cycle();
        assert_eq!(m.pending_stores(), 0);
    }

    #[test]
    fn store_buffer_backpressure() {
        let mut m = system(PortModel::Duplicate, 1, false);
        m.begin_cycle(0);
        for i in 0..16u64 {
            assert!(m.commit_store(i * 64), "store {i}");
        }
        assert!(!m.commit_store(0x9999), "17th store must stall commit");
        m.end_cycle();
    }

    #[test]
    fn dram_cache_hits_cost_dram_latency() {
        let mut m = MemSystem::new(MemConfig::paper_dram(6)).unwrap();
        m.begin_cycle(0);
        let r = m.try_load(0x4_0000);
        // Cold everywhere: 1 (row cache) + 6 (DRAM) + 60 (memory) + 64
        // (a full 512-byte row over the 8 B/cycle memory bus); being
        // on-chip there is no chip-bus transfer. Total 131.
        assert_eq!(r.complete_at(), Some(131));
        assert_eq!(m.stats().l2_misses, 1);
        m.end_cycle();
        // Same 512-byte row now hits the row-buffer cache in one cycle.
        m.begin_cycle(200);
        match m.try_load(0x4_01f8) {
            LoadResponse::Hit { complete_at } => assert_eq!(complete_at, 201),
            other => panic!("{other:?}"),
        }
        m.end_cycle();
        // Push the row out of the 2-way row-buffer cache with two more rows
        // of the same set (sets are 16 at 512-byte rows, so 8 KB apart).
        for (i, a) in [0x4_2000u64, 0x4_4000].iter().enumerate() {
            m.begin_cycle(400 + 200 * i as u64);
            m.try_load(*a);
            m.end_cycle();
        }
        // The evicted row is still in the 4 MB DRAM: row-cache miss, DRAM
        // hit costs 1 + 6 cycles.
        m.begin_cycle(1000);
        match m.try_load(0x4_0000) {
            LoadResponse::Miss { complete_at } => assert_eq!(complete_at, 1007),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats().l2_hits, 1);
        m.end_cycle();
    }

    #[test]
    fn pipelined_hit_time_reflected_in_completion() {
        for hit in 1..=3u64 {
            let mut m = system(PortModel::Duplicate, hit, false);
            m.begin_cycle(0);
            m.try_load(0x700);
            m.end_cycle();
            m.begin_cycle(1000);
            assert_eq!(m.try_load(0x700).complete_at(), Some(1000 + hit));
            m.end_cycle();
        }
    }

    #[test]
    fn warm_touch_fills_all_levels_without_stats() {
        let mut m = system(PortModel::Duplicate, 1, true);
        m.warm_touch(0x8000);
        assert_eq!(m.stats().load_requests, 0, "warming is invisible to statistics");
        m.begin_cycle(10);
        match m.try_load(0x8000) {
            // The line buffer was warmed too.
            LoadResponse::LineBufferHit { complete_at } => assert_eq!(complete_at, 11),
            other => panic!("{other:?}"),
        }
        m.end_cycle();
    }

    #[test]
    fn warm_touch_reaches_the_second_level() {
        let mut m = system(PortModel::Duplicate, 1, false);
        // Warm a line, then evict it from L1 by warming its set neighbours
        // (32K two-way, 512 sets: 16K apart aliases the same set).
        m.warm_touch(0x0);
        m.warm_touch(0x4000);
        m.warm_touch(0x8000);
        m.begin_cycle(0);
        // L1 miss but L2 hit: 1 + 10 = 11 on an idle bus.
        assert_eq!(m.try_load(0x0).complete_at(), Some(11));
        m.end_cycle();
    }

    #[test]
    fn rejected_loads_consume_nothing() {
        let mut m = system(PortModel::Duplicate, 1, false);
        m.begin_cycle(0);
        // Four distinct misses fill the MSHRs (two per cycle through the
        // duplicate ports).
        m.try_load(0x1_0000);
        m.try_load(0x2_0000);
        m.end_cycle();
        m.begin_cycle(1);
        m.try_load(0x3_0000);
        m.try_load(0x4_0000);
        m.end_cycle();
        m.begin_cycle(2);
        let before = m.stats().l1_load_misses;
        assert!(matches!(m.try_load(0x5_0000), LoadResponse::Rejected(RejectReason::MshrFull)));
        assert_eq!(m.stats().l1_load_misses, before, "rejections must not count as misses");
        assert_eq!(m.stats().mshr_rejections, 1);
        // The port was not consumed either: a hit to an in-flight line
        // merges through the port just fine.
        assert!(matches!(m.try_load(0x1_0008), LoadResponse::Miss { .. }));
        m.end_cycle();
    }

    #[test]
    fn store_misses_write_allocate() {
        let mut m = system(PortModel::Ideal(2), 1, false);
        m.begin_cycle(0);
        assert!(m.commit_store(0x9000));
        m.end_cycle();
        assert_eq!(m.stats().store_misses, 1);
        assert_eq!(m.misses_in_flight(), 1, "write-allocate holds an MSHR");
        // After the fill completes the line is resident for loads.
        m.begin_cycle(500);
        assert!(matches!(m.try_load(0x9000), LoadResponse::Hit { .. }));
        m.end_cycle();
    }

    #[test]
    fn eviction_invalidates_line_buffer_copy() {
        // 4 KB cache, 2-way, 64 sets: lines 0x0000 / 0x0800 / 0x1000 share
        // set 0; filling three evicts the LRU one.
        let mut cfg = MemConfig::paper_sram(4 << 10, 1, PortModel::Ideal(4));
        cfg = cfg.with_line_buffer();
        let mut m = MemSystem::new(cfg).unwrap();
        for (t, a) in [0x0000u64, 0x0800, 0x1000].iter().enumerate() {
            m.begin_cycle(t as u64 * 100);
            m.try_load(*a);
            m.end_cycle();
        }
        // 0x0000 was evicted from L1 and must be gone from the LB too.
        m.begin_cycle(1000);
        match m.try_load(0x0008) {
            LoadResponse::Miss { .. } => {}
            other => panic!("expected L1+LB miss, got {other:?}"),
        }
        m.end_cycle();
    }
}
