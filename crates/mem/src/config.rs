//! Memory hierarchy configuration.

use std::fmt;

/// An invalid memory-subsystem configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `PortModel::Ideal(0)`.
    NoPorts,
    /// `PortModel::Banked(0)`.
    NoBanks,
    /// Bank count is not a power of two (line interleaving needs one).
    BanksNotPowerOfTwo {
        /// Offending bank count.
        banks: u32,
    },
    /// Primary-cache hit time of zero cycles.
    ZeroHitCycles,
    /// Primary-cache associativity of zero.
    ZeroAssociativity,
    /// No miss status handling registers.
    NoMshrs,
    /// Line size is zero or not a power of two (address mapping
    /// interleaves on power-of-two line boundaries).
    LineBytesNotPowerOfTwo {
        /// Offending line size.
        line_bytes: u64,
    },
    /// Capacity below one set (`line_bytes * assoc`).
    SmallerThanOneSet,
    /// More banks than cache lines.
    MoreBanksThanLines {
        /// Offending bank count.
        banks: u32,
    },
    /// Line buffer configured with zero entries.
    NoLineBufferEntries,
    /// Line-buffer entry size is zero, not a power of two, or larger than
    /// the primary-cache line.
    BadLineBufferLine {
        /// Offending entry size.
        line_bytes: u64,
    },
    /// Second-level hit time of zero cycles.
    ZeroL2HitCycles,
    /// Store buffer with zero entries.
    NoStoreBuffer,
    /// A bus bandwidth that is zero, negative, or not finite.
    BadBusBandwidth {
        /// Offending bytes-per-cycle value.
        bytes_per_cycle: f64,
    },
    /// Zero bytes fetched from memory per second-level miss.
    ZeroMemFetch,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::NoPorts => f.write_str("need at least one ideal port"),
            ConfigError::NoBanks => f.write_str("need at least one bank"),
            ConfigError::BanksNotPowerOfTwo { banks } => {
                write!(f, "bank count {banks} must be a power of two")
            }
            ConfigError::ZeroHitCycles => f.write_str("L1 hit time must be at least one cycle"),
            ConfigError::ZeroAssociativity => f.write_str("L1 associativity must be at least one"),
            ConfigError::NoMshrs => f.write_str("need at least one MSHR"),
            ConfigError::LineBytesNotPowerOfTwo { line_bytes } => {
                write!(f, "line size {line_bytes} must be a non-zero power of two")
            }
            ConfigError::SmallerThanOneSet => f.write_str("L1 smaller than one set"),
            ConfigError::MoreBanksThanLines { banks } => {
                write!(f, "{banks} banks exceed the number of L1 lines")
            }
            ConfigError::NoLineBufferEntries => f.write_str("line buffer needs at least one entry"),
            ConfigError::BadLineBufferLine { line_bytes } => {
                write!(f, "line-buffer entry size {line_bytes} must be a power of two no larger than the L1 line")
            }
            ConfigError::ZeroL2HitCycles => {
                f.write_str("second-level hit time must be at least one cycle")
            }
            ConfigError::NoStoreBuffer => f.write_str("store buffer must have at least one entry"),
            ConfigError::BadBusBandwidth { bytes_per_cycle } => {
                write!(f, "bus bandwidth {bytes_per_cycle} must be positive and finite")
            }
            ConfigError::ZeroMemFetch => f.write_str("memory fetch size must be at least one byte"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How the primary data cache provides bandwidth (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortModel {
    /// `n` ideal ports: independently addressed, one access each per cycle.
    Ideal(u32),
    /// `n` external banks, line-interleaved; one access per bank per cycle.
    Banked(u32),
    /// Two copies of the cache (Alpha 21164 style): two load ports; stores
    /// must write both copies and are buffered until both ports are idle.
    Duplicate,
}

impl PortModel {
    /// Peak accesses per cycle.
    pub fn peak_per_cycle(&self) -> u32 {
        match *self {
            PortModel::Ideal(n) => n,
            PortModel::Banked(n) => n,
            PortModel::Duplicate => 2,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Fails if the port or bank count is zero or a bank count is not a
    /// power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            PortModel::Ideal(0) => Err(ConfigError::NoPorts),
            PortModel::Banked(0) => Err(ConfigError::NoBanks),
            PortModel::Banked(n) if !n.is_power_of_two() => {
                Err(ConfigError::BanksNotPowerOfTwo { banks: n })
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for PortModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortModel::Ideal(n) => write!(f, "{n} ideal port{}", if n == 1 { "" } else { "s" }),
            PortModel::Banked(n) => write!(f, "{n}-way banked"),
            PortModel::Duplicate => f.write_str("duplicate"),
        }
    }
}

/// Line-buffer configuration (paper Section 2.3): 32 fully associative
/// entries in the load/store unit, one cache line each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineBufferConfig {
    /// Number of entries (32 in the paper).
    pub entries: usize,
    /// Bytes per entry (one primary-cache line, 32 B).
    pub line_bytes: u64,
}

impl LineBufferConfig {
    /// Validates the configuration (in isolation; [`L1Config::validate`]
    /// additionally checks the entry size against the cache line).
    ///
    /// # Errors
    ///
    /// Fails on zero entries or a non-power-of-two entry size.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::NoLineBufferEntries);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::BadLineBufferLine { line_bytes: self.line_bytes });
        }
        Ok(())
    }
}

impl Default for LineBufferConfig {
    fn default() -> Self {
        LineBufferConfig { entries: 32, line_bytes: 32 }
    }
}

/// Primary data cache configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct L1Config {
    /// Capacity in bytes (4 KB – 1 MB in the study).
    pub size_bytes: u64,
    /// Associativity (two in the study).
    pub assoc: u32,
    /// Line size in bytes (32 in the study; 512 for the DRAM row-buffer
    /// cache).
    pub line_bytes: u64,
    /// Pipelined hit time in cycles (1–3).
    pub hit_cycles: u64,
    /// Port structure.
    pub ports: PortModel,
    /// Miss status handling registers (4 in the study).
    pub mshrs: usize,
    /// Optional line buffer in the load/store unit.
    pub line_buffer: Option<LineBufferConfig>,
}

impl L1Config {
    /// The paper's default primary cache: `size_bytes`, 2-way, 32-byte
    /// lines, 4 MSHRs.
    pub fn paper(size_bytes: u64, hit_cycles: u64, ports: PortModel) -> Self {
        L1Config {
            size_bytes,
            assoc: 2,
            line_bytes: 32,
            hit_cycles,
            ports,
            mshrs: 4,
            line_buffer: None,
        }
    }

    /// Enables the paper's 32-entry line buffer.
    pub fn with_line_buffer(mut self) -> Self {
        self.line_buffer =
            Some(LineBufferConfig { entries: 32, line_bytes: self.line_bytes.min(32) });
        self
    }

    /// Validates the primary-cache configuration.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid parameter: ports, geometry (line size,
    /// associativity, capacity, bank count), MSHRs, or the line buffer.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.ports.validate()?;
        if self.hit_cycles == 0 {
            return Err(ConfigError::ZeroHitCycles);
        }
        if self.assoc == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if self.mshrs == 0 {
            return Err(ConfigError::NoMshrs);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineBytesNotPowerOfTwo { line_bytes: self.line_bytes });
        }
        if self.size_bytes < self.line_bytes * u64::from(self.assoc) {
            return Err(ConfigError::SmallerThanOneSet);
        }
        if let PortModel::Banked(n) = self.ports {
            if u64::from(n) > self.size_bytes / self.line_bytes {
                return Err(ConfigError::MoreBanksThanLines { banks: n });
            }
        }
        if let Some(lb) = self.line_buffer {
            lb.validate()?;
            if lb.line_bytes > self.line_bytes {
                return Err(ConfigError::BadLineBufferLine { line_bytes: lb.line_bytes });
            }
        }
        Ok(())
    }
}

/// The level behind the primary cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SecondLevel {
    /// Off-chip SRAM secondary cache (paper default: 4 MB, 2-way, 64-byte
    /// lines, 10-cycle hit), reached over the chip↔L2 bus.
    Sram {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Associativity.
        assoc: u32,
        /// Line size in bytes.
        line_bytes: u64,
        /// Hit latency in cycles.
        hit_cycles: u64,
    },
    /// On-chip DRAM cache (paper Section 2.4: 4 MB, 6–8-cycle hit, 512-byte
    /// rows, no off-chip secondary cache). Being on-die, fills do not cross
    /// the chip↔L2 bus.
    Dram {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Associativity.
        assoc: u32,
        /// Row (line) size in bytes.
        line_bytes: u64,
        /// Hit latency in cycles.
        hit_cycles: u64,
    },
}

impl SecondLevel {
    /// The paper's off-chip secondary cache.
    pub fn paper_sram() -> Self {
        SecondLevel::Sram { size_bytes: 4 << 20, assoc: 2, line_bytes: 64, hit_cycles: 10 }
    }

    /// The paper's on-chip DRAM cache with the given hit time (6–8).
    pub fn paper_dram(hit_cycles: u64) -> Self {
        SecondLevel::Dram { size_bytes: 4 << 20, assoc: 2, line_bytes: 512, hit_cycles }
    }

    /// Hit latency in cycles.
    pub fn hit_cycles(&self) -> u64 {
        match *self {
            SecondLevel::Sram { hit_cycles, .. } | SecondLevel::Dram { hit_cycles, .. } => {
                hit_cycles
            }
        }
    }

    /// `true` for the on-chip DRAM cache.
    pub fn is_on_chip(&self) -> bool {
        matches!(self, SecondLevel::Dram { .. })
    }
}

/// Complete memory-subsystem configuration (paper Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Primary data cache.
    pub l1: L1Config,
    /// Second level (SRAM L2 or on-chip DRAM cache).
    pub l2: SecondLevel,
    /// Main memory access latency in cycles (60 at 200 MHz).
    pub mem_latency: u64,
    /// Processor↔L2 bandwidth in bytes per cycle (12.5 = 2.5 GB/s at
    /// 200 MHz).
    pub chip_bus_bytes_per_cycle: f64,
    /// L2↔memory bandwidth in bytes per cycle (8 = 1.6 GB/s at 200 MHz).
    pub mem_bus_bytes_per_cycle: f64,
    /// Store buffer depth (stores wait here for idle ports).
    pub store_buffer: usize,
    /// Bytes fetched from main memory per second-level miss.
    pub mem_fetch_bytes: u64,
}

impl MemConfig {
    /// The paper's SRAM memory system around a primary cache of
    /// `l1_size_bytes` with `hit_cycles` pipelined hit time and `ports`.
    pub fn paper_sram(l1_size_bytes: u64, hit_cycles: u64, ports: PortModel) -> Self {
        MemConfig {
            l1: L1Config::paper(l1_size_bytes, hit_cycles, ports),
            l2: SecondLevel::paper_sram(),
            mem_latency: 60,
            chip_bus_bytes_per_cycle: 12.5,
            mem_bus_bytes_per_cycle: 8.0,
            store_buffer: 16,
            mem_fetch_bytes: 64,
        }
    }

    /// The paper's DRAM-cache system: a 16 KB two-way 512-byte-line
    /// row-buffer cache (eight-way banked, single-cycle) over a 4 MB DRAM
    /// cache with `dram_hit_cycles` (6–8), and no off-chip L2.
    pub fn paper_dram(dram_hit_cycles: u64) -> Self {
        MemConfig {
            l1: L1Config {
                size_bytes: 16 << 10,
                assoc: 2,
                line_bytes: 512,
                hit_cycles: 1,
                ports: PortModel::Banked(8),
                mshrs: 4,
                line_buffer: None,
            },
            l2: SecondLevel::paper_dram(dram_hit_cycles),
            mem_latency: 60,
            chip_bus_bytes_per_cycle: 12.5,
            mem_bus_bytes_per_cycle: 8.0,
            store_buffer: 16,
            // A DRAM-cache miss allocates a whole 512-byte row from memory
            // (the row is the fill unit), unlike the SRAM system's 64-byte
            // L2 lines.
            mem_fetch_bytes: 512,
        }
    }

    /// Enables the line buffer on the primary cache.
    pub fn with_line_buffer(mut self) -> Self {
        self.l1.line_buffer =
            Some(LineBufferConfig { entries: 32, line_bytes: self.l1.line_bytes.min(32) });
        self
    }

    /// Overrides the second-level hit time (Figure 9 rescales the 50 ns L2
    /// into cycles as the processor cycle time changes).
    pub fn with_l2_hit_cycles(mut self, cycles: u64) -> Self {
        self.l2 = match self.l2 {
            SecondLevel::Sram { size_bytes, assoc, line_bytes, .. } => {
                SecondLevel::Sram { size_bytes, assoc, line_bytes, hit_cycles: cycles }
            }
            SecondLevel::Dram { size_bytes, assoc, line_bytes, .. } => {
                SecondLevel::Dram { size_bytes, assoc, line_bytes, hit_cycles: cycles }
            }
        };
        self
    }

    /// Overrides the main-memory latency in cycles (Figure 9 rescaling of
    /// the fixed 300 ns).
    pub fn with_mem_latency(mut self, cycles: u64) -> Self {
        self.mem_latency = cycles;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Fails with the first invalid parameter, starting with the primary
    /// cache ([`L1Config::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1.validate()?;
        if self.l2.hit_cycles() == 0 {
            return Err(ConfigError::ZeroL2HitCycles);
        }
        if self.store_buffer == 0 {
            return Err(ConfigError::NoStoreBuffer);
        }
        for bw in [self.chip_bus_bytes_per_cycle, self.mem_bus_bytes_per_cycle] {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(ConfigError::BadBusBandwidth { bytes_per_cycle: bw });
            }
        }
        if self.mem_fetch_bytes == 0 {
            return Err(ConfigError::ZeroMemFetch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_validate() {
        for hit in 1..=3 {
            for ports in [PortModel::Ideal(2), PortModel::Banked(8), PortModel::Duplicate] {
                MemConfig::paper_sram(32 << 10, hit, ports).validate().unwrap();
            }
        }
        for dram_hit in 6..=8 {
            MemConfig::paper_dram(dram_hit).validate().unwrap();
            MemConfig::paper_dram(dram_hit).with_line_buffer().validate().unwrap();
        }
    }

    #[test]
    fn port_model_peaks() {
        assert_eq!(PortModel::Ideal(3).peak_per_cycle(), 3);
        assert_eq!(PortModel::Banked(128).peak_per_cycle(), 128);
        assert_eq!(PortModel::Duplicate.peak_per_cycle(), 2);
    }

    #[test]
    fn port_model_display() {
        assert_eq!(PortModel::Ideal(1).to_string(), "1 ideal port");
        assert_eq!(PortModel::Ideal(2).to_string(), "2 ideal ports");
        assert_eq!(PortModel::Banked(8).to_string(), "8-way banked");
        assert_eq!(PortModel::Duplicate.to_string(), "duplicate");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PortModel::Banked(3).validate().is_err());
        assert!(PortModel::Ideal(0).validate().is_err());
        let mut c = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate);
        c.l1.hit_cycles = 0;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper_sram(4 << 10, 1, PortModel::Banked(8));
        c.l1.ports = PortModel::Banked(256);
        assert!(c.validate().is_err(), "more banks than lines");
    }

    #[test]
    fn dram_preset_matches_paper() {
        let c = MemConfig::paper_dram(6);
        assert_eq!(c.l1.size_bytes, 16 << 10);
        assert_eq!(c.l1.line_bytes, 512);
        assert_eq!(c.l1.hit_cycles, 1);
        assert!(c.l2.is_on_chip());
        assert_eq!(c.l2.hit_cycles(), 6);
    }

    #[test]
    fn line_buffer_entry_size_capped_at_32() {
        let c = MemConfig::paper_dram(6).with_line_buffer();
        assert_eq!(c.l1.line_buffer.unwrap().line_bytes, 32);
        let s = MemConfig::paper_sram(32 << 10, 1, PortModel::Duplicate).with_line_buffer();
        assert_eq!(s.l1.line_buffer.unwrap().line_bytes, 32);
    }

    #[test]
    fn overrides_apply() {
        let c = MemConfig::paper_sram(32 << 10, 2, PortModel::Duplicate)
            .with_l2_hit_cycles(25)
            .with_mem_latency(150);
        assert_eq!(c.l2.hit_cycles(), 25);
        assert_eq!(c.mem_latency, 150);
    }
}
