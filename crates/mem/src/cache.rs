//! A generic set-associative cache tag array with LRU replacement.

use crate::addr::line_index;

/// A set-associative tag array (no data — the simulator is timing-only).
///
/// # Example
///
/// ```
/// use hbc_mem::CacheArray;
///
/// let mut c = CacheArray::new(4096, 2, 32); // 4 KB, 2-way, 32 B lines
/// assert!(!c.probe(0x1000));
/// c.touch(0x1000);
/// assert!(c.probe(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    size_bytes: u64,
    assoc: u32,
    line_bytes: u64,
    sets: u64,
    /// `sets - 1`: the set count is a validated power of two, so indexing
    /// is a mask rather than a hardware divide in the touch hot path.
    set_mask: u64,
    /// `ways[set * assoc + way]`: tag and LRU stamp interleaved so one
    /// set's ways share cache lines. A megabyte-scale simulated cache has
    /// megabytes of tag state; splitting tags and stamps into separate
    /// arrays would cost two host cache misses per touch instead of one.
    ways: Vec<Way>,
    clock: u64,
}

/// One cache way: the resident line index (or [`Way::INVALID`]) plus its
/// last-use stamp.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    stamp: u64,
}

impl Way {
    /// Sentinel for an empty way. Line indices are addresses shifted right
    /// by the line-offset bits, so `u64::MAX` can never collide with one.
    const INVALID: u64 = u64::MAX;

    const EMPTY: Way = Way { tag: Way::INVALID, stamp: 0 };

    fn line(&self) -> Option<u64> {
        (self.tag != Way::INVALID).then_some(self.tag)
    }
}

impl CacheArray {
    /// Creates a cache of `size_bytes` with `assoc` ways and
    /// `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, not a power of two where required,
    /// or if the geometry yields no sets.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_bytes > 0, "cache geometry must be non-zero");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = size_bytes / line_bytes;
        assert!(lines >= u64::from(assoc), "cache smaller than one set");
        let sets = lines / u64::from(assoc);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            size_bytes,
            assoc,
            line_bytes,
            sets,
            set_mask: sets - 1,
            ways: vec![Way::EMPTY; (sets * u64::from(assoc)) as usize],
            clock: 0,
        }
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn set_of(&self, line: u64) -> u64 {
        line & self.set_mask
    }

    fn ways(&self, set: u64) -> std::ops::Range<usize> {
        let base = (set * u64::from(self.assoc)) as usize;
        base..base + self.assoc as usize
    }

    /// `true` if the line containing `addr` is present (does not update
    /// LRU state).
    pub fn probe(&self, addr: u64) -> bool {
        let line = line_index(addr, self.line_bytes);
        let set = self.set_of(line);
        self.ways(set).any(|w| self.ways[w].tag == line)
    }

    /// Accesses `addr`: on a hit, updates LRU and returns `true`; on a
    /// miss, inserts the line (evicting the LRU way) and returns `false`.
    ///
    /// Returns the evicted line index through [`CacheArray::touch_evict`]
    /// when the caller needs it.
    pub fn touch(&mut self, addr: u64) -> bool {
        self.touch_evict(addr).hit
    }

    /// Like [`CacheArray::touch`] but also reports any evicted line.
    pub fn touch_evict(&mut self, addr: u64) -> TouchResult {
        self.clock += 1;
        let line = line_index(addr, self.line_bytes);
        let set = self.set_of(line);
        for w in self.ways(set) {
            if self.ways[w].tag == line {
                self.ways[w].stamp = self.clock;
                return TouchResult { hit: true, evicted: None };
            }
        }
        // Miss: fill the invalid or least recently used way. Every set has
        // at least one way (associativity is validated non-zero), so the
        // fold over ways always yields a victim without a panic path.
        let mut victim = (set * u64::from(self.assoc)) as usize;
        let mut victim_key = (u8::MAX, u64::MAX);
        for w in self.ways(set) {
            let key =
                if self.ways[w].tag == Way::INVALID { (0, 0) } else { (1, self.ways[w].stamp) };
            if key < victim_key {
                victim = w;
                victim_key = key;
            }
        }
        let evicted = self.ways[victim].line();
        self.ways[victim] = Way { tag: line, stamp: self.clock };
        TouchResult { hit: false, evicted }
    }

    /// Removes the line containing `addr` if present; returns whether it
    /// was.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = line_index(addr, self.line_bytes);
        let set = self.set_of(line);
        for w in self.ways(set) {
            if self.ways[w].tag == line {
                self.ways[w] = Way::EMPTY;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u64 {
        self.ways.iter().filter(|w| w.tag != Way::INVALID).count() as u64
    }
}

/// Result of [`CacheArray::touch_evict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Line index displaced by the fill, if any.
    pub evicted: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = CacheArray::new(4096, 2, 32);
        assert!(!c.touch(0x100));
        assert!(c.touch(0x100));
        assert!(c.touch(0x104), "same line, different offset");
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish: 2 ways, force 3 lines into one set.
        let mut c = CacheArray::new(64, 2, 32); // one set, two ways
        assert_eq!(c.sets(), 1);
        c.touch(0);
        c.touch(32);
        c.touch(0); // line 0 most recent
        let r = c.touch_evict(2 * 32); // evicts line 1
        assert_eq!(r.evicted, Some(1));
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert!(c.probe(64));
    }

    #[test]
    fn sets_isolate_lines() {
        let mut c = CacheArray::new(4096, 2, 32); // 64 sets
        c.touch(0);
        c.touch(32); // different set
        assert!(c.probe(0) && c.probe(32));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = CacheArray::new(4096, 2, 32);
        c.touch(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = CacheArray::new(4096, 2, 32);
        assert_eq!(c.occupancy(), 0);
        for i in 0..10 {
            c.touch(i * 32);
        }
        assert_eq!(c.occupancy(), 10);
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = CacheArray::new(4096, 2, 32);
        // Stream over 8 KB twice: second pass still misses (capacity).
        let mut second_pass_hits = 0;
        for _ in 0..2 {
            for i in 0..256u64 {
                if c.touch(i * 32) {
                    second_pass_hits += 1;
                }
            }
        }
        assert!(second_pass_hits < 200, "got {second_pass_hits} hits");
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = CacheArray::new(4096, 2, 32);
        let mut hits = 0;
        for pass in 0..2 {
            for i in 0..64u64 {
                if c.touch(i * 32) {
                    hits += 1;
                }
            }
            if pass == 0 {
                assert_eq!(hits, 0);
            }
        }
        assert_eq!(hits, 64, "whole second pass must hit");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size() {
        let _ = CacheArray::new(4096, 2, 48);
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn cache_smaller_than_assoc() {
        let _ = CacheArray::new(32, 4, 32);
    }
}
