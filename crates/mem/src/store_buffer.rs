//! The store buffer.

use std::collections::VecDeque;

/// A FIFO of committed stores waiting for idle cache ports.
///
/// The paper assumes "stores can be buffered and bypassed to allow loads to
/// access the cache first", so stores drain only into port slots loads left
/// unused. Commit stalls when the buffer is full.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    fifo: VecDeque<u64>,
    capacity: usize,
    peak: usize,
    accepted: u64,
    full_stalls: u64,
}

impl StoreBuffer {
    /// Creates a buffer of `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs at least one entry");
        StoreBuffer {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
            accepted: 0,
            full_stalls: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Attempts to enqueue a committed store to `addr`; returns `false`
    /// (and records a stall) when full.
    pub fn push(&mut self, addr: u64) -> bool {
        if self.fifo.len() == self.capacity {
            self.full_stalls += 1;
            return false;
        }
        self.fifo.push_back(addr);
        self.peak = self.peak.max(self.fifo.len());
        self.accepted += 1;
        true
    }

    /// Address of the oldest buffered store.
    pub fn peek(&self) -> Option<u64> {
        self.fifo.front().copied()
    }

    /// Removes the oldest buffered store.
    pub fn pop(&mut self) -> Option<u64> {
        self.fifo.pop_front()
    }

    /// Highest occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Stores accepted over the run.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Push attempts denied because the buffer was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// The buffer holds no timed state of its own — drain opportunities are
    /// arbitrated by the memory system against ports and MSHRs — so it
    /// never schedules an event horizon of its own.
    pub fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        assert!(sb.push(1) && sb.push(2) && sb.push(3));
        assert_eq!(sb.peek(), Some(1));
        assert_eq!(sb.pop(), Some(1));
        assert_eq!(sb.pop(), Some(2));
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.push(1) && sb.push(2));
        assert!(!sb.push(3));
        assert_eq!(sb.full_stalls(), 1);
        sb.pop();
        assert!(sb.push(3));
        assert_eq!(sb.accepted(), 3);
        assert_eq!(sb.peak(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let mut sb = StoreBuffer::new(1);
        assert!(sb.is_empty());
        assert_eq!(sb.peek(), None);
        assert_eq!(sb.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
