//! Miss status handling registers (lock-up-free cache support, [Fark94]).

/// A file of miss status handling registers.
///
/// Each entry tracks one outstanding L1 line fill and the cycle its data
/// returns. Secondary misses to the same line merge into the existing entry.
/// The paper's primary data cache has four MSHRs (Figure 2).
///
/// # Example
///
/// ```
/// use hbc_mem::MshrFile;
///
/// let mut mshrs = MshrFile::new(4);
/// assert!(mshrs.allocate(100, 250).is_ok());
/// assert_eq!(mshrs.pending(100), Some(250)); // merge target for line 100
/// mshrs.retire(250);
/// assert_eq!(mshrs.pending(100), None);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// (line index, fill-complete cycle).
    entries: Vec<(u64, u64)>,
    peak: usize,
    allocations: u64,
    merges: u64,
    full_rejections: u64,
}

/// Error returned when all MSHRs are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFullError;

impl std::fmt::Display for MshrFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all miss status handling registers are busy")
    }
}

impl std::error::Error for MshrFullError {}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            peak: 0,
            allocations: 0,
            merges: 0,
            full_rejections: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of outstanding misses.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// If `line` is already outstanding, returns its fill-complete cycle
    /// (a *secondary* miss merges with it and counts as a merge).
    pub fn pending(&self, line: u64) -> Option<u64> {
        self.entries.iter().find(|(l, _)| *l == line).map(|(_, c)| *c)
    }

    /// Records a merge with an outstanding miss for statistics.
    pub fn note_merge(&mut self) {
        self.merges += 1;
    }

    /// Allocates a register for a primary miss on `line` completing at
    /// `complete_at`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFullError`] when every register is busy; the requester
    /// must retry on a later cycle.
    pub fn allocate(&mut self, line: u64, complete_at: u64) -> Result<(), MshrFullError> {
        debug_assert!(self.pending(line).is_none(), "primary miss on an outstanding line");
        if self.entries.len() == self.capacity {
            self.full_rejections += 1;
            return Err(MshrFullError);
        }
        self.entries.push((line, complete_at));
        self.peak = self.peak.max(self.entries.len());
        self.allocations += 1;
        Ok(())
    }

    /// Frees every register whose fill completed at or before `now`.
    pub fn retire(&mut self, now: u64) {
        self.entries.retain(|(_, c)| *c > now);
    }

    /// The earliest fill completion strictly after `now`, if any miss is
    /// still outstanding then — the MSHR file's contribution to the event
    /// horizon.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.entries.iter().map(|&(_, c)| c).filter(|&c| c > now).min()
    }

    /// First cycle at or after `t` with a free register, assuming no new
    /// allocations: `t` itself unless every register is still busy then, in
    /// which case the earliest outstanding fill frees one.
    pub fn free_at(&self, t: u64) -> u64 {
        let busy_at_t = self.entries.iter().filter(|&&(_, c)| c > t).count();
        if busy_at_t < self.capacity {
            t
        } else {
            // A full file always has a fill outstanding past `t`; the `t`
            // fallback is unreachable but keeps this query panic-free.
            self.next_event(t).unwrap_or(t)
        }
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total primary-miss allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total secondary-miss merges recorded.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a request found the file full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Sanitizer: panics if the file leaks entries past their fill time,
    /// exceeds its capacity, or holds duplicate lines.
    #[cfg(feature = "sanitize")]
    pub(crate) fn assert_sane(&self, now: u64) {
        assert!(
            self.entries.len() <= self.capacity,
            "sanitize: {} MSHRs in flight exceed capacity {}",
            self.entries.len(),
            self.capacity
        );
        for (i, (line, complete_at)) in self.entries.iter().enumerate() {
            assert!(
                *complete_at > now,
                "sanitize: MSHR leak: line {line} completed at {complete_at} \
                 but is still allocated at {now}"
            );
            assert!(
                !self.entries[..i].iter().any(|(l, _)| l == line),
                "sanitize: duplicate MSHR entries for line {line}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(4);
        for line in 0..4 {
            assert!(m.allocate(line, 100).is_ok());
        }
        assert_eq!(m.allocate(99, 100), Err(MshrFullError));
        assert_eq!(m.full_rejections(), 1);
        assert_eq!(m.in_flight(), 4);
        assert_eq!(m.peak(), 4);
    }

    #[test]
    fn retire_frees_completed() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 50).unwrap();
        m.allocate(2, 80).unwrap();
        m.retire(50);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.pending(2), Some(80));
        assert_eq!(m.pending(1), None);
        m.retire(80);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(1);
        m.allocate(7, 120).unwrap();
        assert_eq!(m.pending(7), Some(120));
        m.note_merge();
        assert_eq!(m.merges(), 1);
        // The file is full, but line 7 requests never need a new entry.
        assert!(m.allocate(8, 130).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
