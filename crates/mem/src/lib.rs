//! The on-chip memory hierarchy of Wilson & Olukotun, *"Designing High
//! Bandwidth On-Chip Caches"* (ISCA 1997).
//!
//! This crate models everything in the paper's Figure 2 below the processor
//! core, cycle by cycle:
//!
//! * a lock-up-free, fully pipelined, two-way set-associative primary data
//!   cache (4 KB–1 MB, 32-byte lines, 1–3-cycle hit) with four MSHRs,
//! * three port structures — ideal multi-porting, external banking with
//!   line interleaving, and cache duplication ([`PortModel`]),
//! * an optional 32-entry fully associative [`LineBuffer`] in the
//!   load/store unit (the paper's level-zero cache),
//! * a buffered store path that drains into port slots loads leave idle,
//! * a 4 MB off-chip SRAM L2 (10-cycle) or a 4 MB on-chip DRAM cache
//!   (6–8-cycle) behind a 16 KB row-buffer cache ([`SecondLevel`]),
//! * bandwidth-limited buses (2.5 GB/s chip↔L2, 1.6 GB/s L2↔memory) and a
//!   60-cycle main memory.
//!
//! The entry point is [`MemSystem`]; see its documentation for the cycle
//! protocol.

#![warn(missing_docs)]

pub mod addr;
mod bus;
mod cache;
mod config;
mod hierarchy;
mod line_buffer;
mod mshr;
mod ports;
mod stats;
mod store_buffer;

pub use bus::Bus;
pub use cache::{CacheArray, TouchResult};
pub use config::{ConfigError, L1Config, LineBufferConfig, MemConfig, PortModel, SecondLevel};
pub use hierarchy::{LoadResponse, MemSystem, RejectReason};
pub use line_buffer::LineBuffer;
pub use mshr::{MshrFile, MshrFullError};
pub use ports::{PortDenied, PortTracker};
pub use stats::MemStats;
pub use store_buffer::StoreBuffer;
