//! Address arithmetic helpers.

/// Returns the line index of `addr` for `line_bytes`-byte lines.
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
///
/// # Example
///
/// ```
/// use hbc_mem::addr::line_index;
///
/// assert_eq!(line_index(0x0, 32), 0);
/// assert_eq!(line_index(0x1f, 32), 0);
/// assert_eq!(line_index(0x20, 32), 1);
/// ```
pub fn line_index(addr: u64, line_bytes: u64) -> u64 {
    assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
    addr >> line_bytes.trailing_zeros()
}

/// Returns the base address of the line containing `addr`.
pub fn line_base(addr: u64, line_bytes: u64) -> u64 {
    line_index(addr, line_bytes) << line_bytes.trailing_zeros()
}

/// Returns the bank that `addr` maps to under line interleaving across
/// `nbanks` banks (the scheme of the MIPS R10000's banked cache).
///
/// # Panics
///
/// Panics if `nbanks` is zero or `line_bytes` is not a power of two.
pub fn bank_of(addr: u64, line_bytes: u64, nbanks: u32) -> u32 {
    assert!(nbanks > 0, "bank count must be non-zero");
    // hbc-allow: cast-truncation (the value is `% u64::from(nbanks)`, so it fits u32 by construction)
    (line_index(addr, line_bytes) % u64::from(nbanks)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_base(0x47, 32), 0x40);
        assert_eq!(line_index(0x47, 32), 2);
        assert_eq!(line_base(0x200, 512), 0x200);
    }

    #[test]
    fn banks_interleave_by_line() {
        assert_eq!(bank_of(0x00, 32, 8), 0);
        assert_eq!(bank_of(0x20, 32, 8), 1);
        assert_eq!(bank_of(0xE0, 32, 8), 7);
        assert_eq!(bank_of(0x100, 32, 8), 0);
        // Same line, same bank regardless of offset.
        assert_eq!(bank_of(0x21, 32, 8), bank_of(0x3f, 32, 8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_line_size_rejected() {
        let _ = line_index(0, 33);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_banks_rejected() {
        let _ = bank_of(0, 32, 0);
    }
}
