//! Per-cycle cache-port arbitration.

use crate::addr::bank_of;
use crate::config::PortModel;
use hbc_probe::saturating_count;

/// Why a port request was denied this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDenied {
    /// All ports are already servicing accesses this cycle.
    PortsBusy,
    /// The addressed bank is already servicing an access this cycle.
    BankConflict,
}

/// Tracks which ports/banks are consumed within the current cycle.
///
/// The cache is fully pipelined: a port accepts a new access every cycle
/// regardless of hit time, so arbitration is purely per-cycle.
#[derive(Debug, Clone)]
pub struct PortTracker {
    model: PortModel,
    line_bytes: u64,
    used: u32,
    loads_this_cycle: u32,
    banks_used: Vec<bool>,
    bank_conflicts: u64,
    port_rejections: u64,
}

impl PortTracker {
    /// Creates a tracker for `model` with `line_bytes`-byte line
    /// interleaving (banked models).
    pub fn new(model: PortModel, line_bytes: u64) -> Self {
        let banks = match model {
            PortModel::Banked(n) => n as usize,
            _ => 0,
        };
        PortTracker {
            model,
            line_bytes,
            used: 0,
            loads_this_cycle: 0,
            banks_used: vec![false; banks],
            bank_conflicts: 0,
            port_rejections: 0,
        }
    }

    /// The port model being tracked.
    pub fn model(&self) -> PortModel {
        self.model
    }

    /// Resets per-cycle usage; call once at the start of every cycle.
    pub fn begin_cycle(&mut self) {
        self.used = 0;
        self.loads_this_cycle = 0;
        self.banks_used.iter_mut().for_each(|b| *b = false);
    }

    /// Attempts to acquire a port for a load to `addr` this cycle.
    ///
    /// # Errors
    ///
    /// [`PortDenied::PortsBusy`] if all ports are taken, or
    /// [`PortDenied::BankConflict`] if the addressed bank is busy.
    pub fn acquire_load(&mut self, addr: u64) -> Result<(), PortDenied> {
        match self.model {
            PortModel::Ideal(n) => {
                if self.used >= n {
                    saturating_count(&mut self.port_rejections, 1);
                    return Err(PortDenied::PortsBusy);
                }
                self.used += 1;
            }
            PortModel::Duplicate => {
                if self.used >= 2 {
                    saturating_count(&mut self.port_rejections, 1);
                    return Err(PortDenied::PortsBusy);
                }
                self.used += 1;
            }
            PortModel::Banked(n) => {
                let bank = bank_of(addr, self.line_bytes, n) as usize;
                if self.banks_used[bank] {
                    saturating_count(&mut self.bank_conflicts, 1);
                    return Err(PortDenied::BankConflict);
                }
                self.banks_used[bank] = true;
                self.used += 1;
            }
        }
        self.loads_this_cycle += 1;
        Ok(())
    }

    /// Attempts to acquire port(s) for a buffered store to `addr` this
    /// cycle. A duplicate cache requires *both* copies idle (the paper
    /// assumes stores wait "until both cache ports are not servicing load
    /// instructions"); banked and ideal caches need one free slot/bank.
    ///
    /// # Errors
    ///
    /// [`PortDenied`] as for loads.
    pub fn acquire_store(&mut self, addr: u64) -> Result<(), PortDenied> {
        match self.model {
            PortModel::Ideal(n) => {
                if self.used >= n {
                    return Err(PortDenied::PortsBusy);
                }
                self.used += 1;
                Ok(())
            }
            PortModel::Duplicate => {
                if self.loads_this_cycle > 0 || self.used > 0 {
                    return Err(PortDenied::PortsBusy);
                }
                self.used = 2; // writes both copies
                Ok(())
            }
            PortModel::Banked(n) => {
                let bank = bank_of(addr, self.line_bytes, n) as usize;
                if self.banks_used[bank] {
                    saturating_count(&mut self.bank_conflicts, 1);
                    return Err(PortDenied::BankConflict);
                }
                self.banks_used[bank] = true;
                self.used += 1;
                Ok(())
            }
        }
    }

    /// Accesses accepted so far this cycle.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// The tracker's contribution to the event horizon: arbitration state
    /// is strictly per-cycle, so any grant this cycle expires at `now + 1`;
    /// an idle tracker schedules nothing.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (self.used > 0).then_some(now + 1)
    }

    /// Lifetime count of bank-conflict denials.
    pub fn bank_conflicts(&self) -> u64 {
        self.bank_conflicts
    }

    /// Lifetime count of all-ports-busy denials (loads only).
    pub fn port_rejections(&self) -> u64 {
        self.port_rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_ports_cap_per_cycle() {
        let mut t = PortTracker::new(PortModel::Ideal(2), 32);
        t.begin_cycle();
        assert!(t.acquire_load(0x00).is_ok());
        assert!(t.acquire_load(0x20).is_ok());
        assert_eq!(t.acquire_load(0x40), Err(PortDenied::PortsBusy));
        t.begin_cycle();
        assert!(t.acquire_load(0x40).is_ok(), "fresh cycle frees ports");
    }

    #[test]
    fn banked_conflicts_on_same_bank_only() {
        let mut t = PortTracker::new(PortModel::Banked(8), 32);
        t.begin_cycle();
        assert!(t.acquire_load(0x000).is_ok()); // bank 0
        assert!(t.acquire_load(0x020).is_ok()); // bank 1
        assert_eq!(t.acquire_load(0x100), Err(PortDenied::BankConflict)); // bank 0 again
        assert_eq!(t.bank_conflicts(), 1);
        // Eight banks allow eight parallel accesses to distinct banks.
        t.begin_cycle();
        for b in 0..8u64 {
            assert!(t.acquire_load(b * 32).is_ok(), "bank {b}");
        }
        assert_eq!(t.used(), 8);
    }

    #[test]
    fn duplicate_store_needs_idle_cache() {
        let mut t = PortTracker::new(PortModel::Duplicate, 32);
        t.begin_cycle();
        assert!(t.acquire_load(0x00).is_ok());
        assert_eq!(t.acquire_store(0x40), Err(PortDenied::PortsBusy));
        t.begin_cycle();
        assert!(t.acquire_store(0x40).is_ok());
        // The store consumed both copies: no load can follow this cycle.
        assert_eq!(t.acquire_load(0x00), Err(PortDenied::PortsBusy));
    }

    #[test]
    fn ideal_store_takes_one_slot() {
        let mut t = PortTracker::new(PortModel::Ideal(2), 32);
        t.begin_cycle();
        assert!(t.acquire_store(0x00).is_ok());
        assert!(t.acquire_load(0x20).is_ok());
        assert_eq!(t.used(), 2);
    }

    #[test]
    fn banked_store_conflicts_like_a_load() {
        let mut t = PortTracker::new(PortModel::Banked(2), 32);
        t.begin_cycle();
        assert!(t.acquire_load(0x00).is_ok()); // bank 0
        assert_eq!(t.acquire_store(0x80), Err(PortDenied::BankConflict)); // bank 0
        assert!(t.acquire_store(0x20).is_ok()); // bank 1
    }
}
