//! Memory-system statistics.

use hbc_probe::{ProbeExport, ProbeRegistry};

/// Counters accumulated by [`crate::MemSystem`] over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Load requests presented (including retried rejections).
    pub load_requests: u64,
    /// Loads satisfied by the line buffer in one cycle.
    pub lb_hits: u64,
    /// Loads that hit in the primary cache.
    pub l1_load_hits: u64,
    /// Loads that missed in the primary cache (primary or secondary miss).
    pub l1_load_misses: u64,
    /// Loads merged into an outstanding miss.
    pub miss_merges: u64,
    /// Loads denied a port or bank this cycle.
    pub load_rejections: u64,
    /// Loads denied because all MSHRs were busy.
    pub mshr_rejections: u64,
    /// Stores accepted into the store buffer.
    pub stores: u64,
    /// Stores that missed in the primary cache when draining.
    pub store_misses: u64,
    /// Second-level (L2 SRAM or DRAM cache) hits.
    pub l2_hits: u64,
    /// Second-level misses (fills from main memory).
    pub l2_misses: u64,
}

impl MemStats {
    /// Loads actually serviced (line buffer + cache hits + misses).
    pub fn loads_serviced(&self) -> u64 {
        self.lb_hits + self.l1_load_hits + self.l1_load_misses
    }

    /// Fraction of serviced loads satisfied by the line buffer.
    pub fn lb_hit_ratio(&self) -> f64 {
        ratio(self.lb_hits, self.loads_serviced())
    }

    /// L1 miss ratio over serviced loads (line-buffer hits count as hits).
    pub fn load_miss_ratio(&self) -> f64 {
        ratio(self.l1_load_misses, self.loads_serviced())
    }

    /// Second-level miss ratio.
    pub fn l2_miss_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.l2_hits + self.l2_misses)
    }
}

impl ProbeExport for MemStats {
    fn export_probes(&self, reg: &mut ProbeRegistry) {
        reg.counter("mem.load.requests").set(self.load_requests);
        reg.counter("mem.lb.hits").set(self.lb_hits);
        reg.counter("mem.l1.load_hits").set(self.l1_load_hits);
        reg.counter("mem.l1.load_misses").set(self.l1_load_misses);
        reg.counter("mem.l1.miss_merges").set(self.miss_merges);
        reg.counter("mem.l1.load_rejections").set(self.load_rejections);
        reg.counter("mem.l1.mshr_rejections").set(self.mshr_rejections);
        reg.counter("mem.store.accepted").set(self.stores);
        reg.counter("mem.store.misses").set(self.store_misses);
        reg.counter("mem.l2.hits").set(self.l2_hits);
        reg.counter("mem.l2.misses").set(self.l2_misses);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = MemStats::default();
        assert_eq!(s.lb_hit_ratio(), 0.0);
        assert_eq!(s.load_miss_ratio(), 0.0);
        assert_eq!(s.l2_miss_ratio(), 0.0);
    }

    #[test]
    fn export_mirrors_fields() {
        let s = MemStats { lb_hits: 7, l1_load_misses: 3, l2_hits: 1, ..MemStats::default() };
        let mut reg = ProbeRegistry::new();
        s.export_probes(&mut reg);
        assert_eq!(reg.get("mem.lb.hits"), Some(7));
        assert_eq!(reg.get("mem.l1.load_misses"), Some(3));
        assert_eq!(reg.get("mem.l2.hits"), Some(1));
        assert_eq!(reg.get("mem.l2.misses"), Some(0));
        assert_eq!(reg.len(), 11, "one counter per MemStats field");
    }

    #[test]
    fn ratios_compute() {
        let s = MemStats {
            lb_hits: 50,
            l1_load_hits: 40,
            l1_load_misses: 10,
            l2_hits: 8,
            l2_misses: 2,
            ..MemStats::default()
        };
        assert_eq!(s.loads_serviced(), 100);
        assert!((s.lb_hit_ratio() - 0.5).abs() < 1e-12);
        assert!((s.load_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.l2_miss_ratio() - 0.2).abs() < 1e-12);
    }
}
