//! Property tests for the address → bank mapping.
//!
//! The banked-cache model relies on line interleaving being a *bijection*:
//! any window of `nbanks` consecutive lines touches every bank exactly
//! once, so a unit-stride stream load-balances perfectly (paper Section 3:
//! banked caches bandwidth-match duplication only when conflicts are rare).

use hbc_mem::addr::{bank_of, line_base, line_index};
use hbc_ptest::Gen;

const BANK_COUNTS: [u32; 5] = [1, 2, 4, 8, 128];

/// A random power-of-two line size from 4 B to 512 B.
fn line_bytes(g: &mut Gen) -> u64 {
    1 << g.u32_in(2, 9)
}

#[test]
fn bank_mapping_is_bijective_over_any_bank_aligned_window() {
    hbc_ptest::check_default("bank_bijection", |g| {
        let lb = line_bytes(g);
        for &nbanks in &BANK_COUNTS {
            // A line-aligned region of exactly `nbanks` lines, starting at
            // a bank-aligned line so the window covers one full rotation.
            let base_line = g.u64_in(0, 1 << 40) * u64::from(nbanks);
            let mut seen = vec![false; nbanks as usize];
            for i in 0..u64::from(nbanks) {
                let addr = (base_line + i) * lb;
                let bank = bank_of(addr, lb, nbanks);
                assert!(bank < nbanks, "bank {bank} out of range for {nbanks} banks");
                assert!(
                    !seen[bank as usize],
                    "bank {bank} hit twice in a {nbanks}-line window (line size {lb})"
                );
                seen[bank as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "some bank never hit: {seen:?}");
        }
    });
}

#[test]
fn every_window_of_nbanks_lines_covers_every_bank() {
    // Stronger than bank-aligned windows: *any* run of `nbanks` consecutive
    // lines is a permutation of the banks, wherever it starts.
    hbc_ptest::check_default("bank_window_permutation", |g| {
        let lb = line_bytes(g);
        let nbanks = *g.pick(&BANK_COUNTS);
        let start = g.u64_in(0, 1 << 45);
        let mut seen = vec![false; nbanks as usize];
        for i in 0..u64::from(nbanks) {
            let bank = bank_of((start + i) * lb, lb, nbanks) as usize;
            assert!(!seen[bank]);
            seen[bank] = true;
        }
        assert!(seen.iter().all(|&s| s));
    });
}

#[test]
fn offsets_within_a_line_never_change_the_bank() {
    hbc_ptest::check_default("bank_line_offset_invariant", |g| {
        let lb = line_bytes(g);
        let nbanks = *g.pick(&BANK_COUNTS);
        let addr = g.u64_in(0, u64::MAX / 2);
        let offset = g.u64_in(0, lb - 1);
        let base = line_base(addr, lb);
        assert_eq!(bank_of(base, lb, nbanks), bank_of(base + offset, lb, nbanks));
        assert_eq!(line_index(base, lb), line_index(base + offset, lb));
    });
}

#[test]
fn non_power_of_two_line_sizes_are_rejected() {
    hbc_ptest::check_default("bank_bad_line_size", |g| {
        // Any size with more than one set bit must be rejected up front.
        let bad = g.u64_in(3, 1 << 12) | 3;
        assert!(!bad.is_power_of_two());
        let addr = g.u64_in(0, u64::MAX / 2);
        let panicked = std::panic::catch_unwind(|| line_index(addr, bad)).is_err();
        assert!(panicked, "line_index accepted non-power-of-two line size {bad}");
        let panicked = std::panic::catch_unwind(|| bank_of(addr, bad, 8)).is_err();
        assert!(panicked, "bank_of accepted non-power-of-two line size {bad}");
    });
}

#[test]
fn zero_banks_rejected_for_any_address() {
    hbc_ptest::check_default("bank_zero_banks", |g| {
        let lb = line_bytes(g);
        let addr = g.u64_in(0, u64::MAX / 2);
        assert!(std::panic::catch_unwind(|| bank_of(addr, lb, 0)).is_err());
    });
}
