//! Causal analysis over span JSONL: per-request trees, critical-path
//! attribution, per-stage latency aggregates, and anomaly detection.
//!
//! The serving stack exports its span rings as JSON lines — one
//! `SpanRecord` per line from `GET /trace` on `hbc-serve`, and a
//! multi-process merge from the coordinator's `GET /trace?federated=1`
//! (coordinator ring plus every healthy worker's, each introduced by a
//! `{"trace_meta":…}` line carrying drop accounting). This crate turns
//! that stream back into causality:
//!
//! * **Trees** — spans group by request ID; parent links (`parent` = the
//!   enclosing span's ID, 0 for a root) reconstruct the tree. Trace
//!   propagation means a worker's spans carry the *coordinator's*
//!   request ID and hang under its `cluster.forward` span, so one tree
//!   spans both processes.
//! * **Critical path** — each span's *self time* is its duration minus
//!   its direct children's (durations only: every process measures from
//!   its own monotonic origin, so absolute timestamps never compare
//!   across processes, but durations do). The stage with the most self
//!   time dominated the request's wall clock.
//! * **Aggregates** — per-stage duration quantiles (p50/p95/p99) across
//!   every span, via [`hbc_probe::Histogram`].
//! * **Anomalies** — *orphan* spans whose parent ID appears nowhere in
//!   their request (a broken link or an evicted parent), *failover
//!   retries* (a request with two or more `cluster.forward` spans), and
//!   *drop gaps* (a source whose ring evicted spans, so its view is
//!   truncated).
//!
//! # Example
//!
//! ```
//! use hbc_trace::{analyze, TraceSet};
//!
//! let jsonl = "\
//! {\"request\":1,\"span\":2,\"parent\":0,\"stage\":\"cluster.forward\",\"start_us\":0,\"dur_us\":100}\n\
//! {\"request\":1,\"span\":3,\"parent\":2,\"stage\":\"serve.simulate\",\"start_us\":5,\"dur_us\":80}\n";
//! let set = TraceSet::parse_jsonl(jsonl).unwrap();
//! let report = analyze(&set);
//! assert_eq!(report.requests[0].dominant_stage, "serve.simulate");
//! assert!(report.anomalies.orphans.is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet};

use hbc_probe::Histogram;
use hbc_serve::json::Json;

/// One span line from a trace export (field-for-field
/// `hbc_probe::SpanRecord`, with the stage owned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Request the span belongs to (the tree key).
    pub request: u64,
    /// This span's ID.
    pub span: u64,
    /// Enclosing span's ID; 0 for a root span.
    pub parent: u64,
    /// Stage name, e.g. `cluster.forward`.
    pub stage: String,
    /// Start in the *recording process's* microsecond timebase.
    pub start_us: u64,
    /// Duration in microseconds (timebase-independent).
    pub dur_us: u64,
}

/// One `{"trace_meta":…}` line: which node a following run of spans came
/// from, and its ring's drop accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMeta {
    /// Node label (`coordinator` or a worker's `host:port`).
    pub node: String,
    /// Spans evicted from that node's ring before export.
    pub dropped: u64,
    /// Span lines that node contributed to the stream.
    pub retained: u64,
}

/// A parsed trace: every span line plus the per-source meta lines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSet {
    /// All spans, in stream order.
    pub spans: Vec<Span>,
    /// Source meta lines, in stream order (empty for a single-process
    /// `GET /trace` export, which has no meta lines).
    pub sources: Vec<SourceMeta>,
}

/// Reads a `u64` field out of a JSON object (tolerating the codec's
/// `F64` for values that happen to render fractionally).
fn u64_field(obj: &BTreeMap<String, Json>, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_u64)
}

fn str_field<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Option<&'a str> {
    obj.get(key).and_then(Json::as_str)
}

impl TraceSet {
    /// Parses one JSONL stream (either export shape). Blank lines are
    /// skipped; a malformed line is an error naming its 1-based number.
    pub fn parse_jsonl(text: &str) -> Result<TraceSet, String> {
        let mut set = TraceSet::default();
        set.extend_from_jsonl(text)?;
        Ok(set)
    }

    /// Appends another stream (e.g. a second file on the CLI) to this
    /// set. Request IDs are globally unique across processes (workers
    /// namespace theirs by port), so concatenation is the merge.
    pub fn extend_from_jsonl(&mut self, text: &str) -> Result<(), String> {
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let obj = parsed.as_obj().ok_or_else(|| format!("line {}: not an object", i + 1))?;
            if obj.contains_key("trace_meta") {
                self.sources.push(SourceMeta {
                    node: str_field(obj, "node").unwrap_or("?").to_string(),
                    dropped: u64_field(obj, "dropped").unwrap_or(0),
                    retained: u64_field(obj, "retained").unwrap_or(0),
                });
                continue;
            }
            let span = (|| {
                Some(Span {
                    request: u64_field(obj, "request")?,
                    span: u64_field(obj, "span")?,
                    parent: u64_field(obj, "parent")?,
                    stage: str_field(obj, "stage")?.to_string(),
                    start_us: u64_field(obj, "start_us")?,
                    dur_us: u64_field(obj, "dur_us")?,
                })
            })()
            .ok_or_else(|| format!("line {}: not a span record", i + 1))?;
            self.spans.push(span);
        }
        Ok(())
    }
}

/// One request's tree, reduced to its critical-path attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// Request ID.
    pub request: u64,
    /// Spans in the tree.
    pub spans: usize,
    /// Total attributed self time across the tree, in microseconds (the
    /// request's wall clock, as far as spans account for it).
    pub attributed_us: u64,
    /// The stage with the most self time — what dominated the request.
    pub dominant_stage: String,
    /// That stage's total self time.
    pub dominant_us: u64,
    /// `cluster.forward` spans in the tree; ≥ 2 means a failover retry.
    pub forwards: usize,
    /// Orphan spans in the tree (parent ID missing from the request).
    pub orphans: usize,
}

/// Per-stage duration aggregate across every span in the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name.
    pub stage: String,
    /// Spans recorded under it.
    pub count: u64,
    /// Duration quantiles, in microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Summed duration.
    pub total_us: u64,
}

/// A span whose parent link resolves to nothing in its request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orphan {
    /// Request the span claims.
    pub request: u64,
    /// The orphan span's ID.
    pub span: u64,
    /// The parent ID that matched no span in the request.
    pub parent: u64,
    /// The orphan's stage.
    pub stage: String,
}

/// Everything the analysis flags as suspicious.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Anomalies {
    /// Spans with a dangling parent link.
    pub orphans: Vec<Orphan>,
    /// Requests containing a failover retry (≥ 2 forwards).
    pub failover_requests: Vec<u64>,
    /// Sources whose ring evicted spans (`(node, dropped)`), making
    /// their contribution — and any tree containing it — incomplete.
    pub dropped_sources: Vec<(String, u64)>,
}

/// The full analysis result. Render with [`Report::to_text`] or
/// [`Report::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Per-request critical-path summaries, by request ID.
    pub requests: Vec<RequestSummary>,
    /// Per-stage aggregates, by stage name.
    pub stages: Vec<StageStats>,
    /// Flagged anomalies.
    pub anomalies: Anomalies,
    /// Source meta lines from the input, in stream order.
    pub sources: Vec<SourceMeta>,
    /// Total span lines analyzed.
    pub span_count: usize,
}

/// Analyzes a parsed trace: builds the per-request trees, attributes
/// self time, aggregates stages, and flags anomalies.
pub fn analyze(set: &TraceSet) -> Report {
    let mut by_request: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for span in &set.spans {
        by_request.entry(span.request).or_default().push(span);
    }

    let mut requests = Vec::with_capacity(by_request.len());
    let mut anomalies = Anomalies::default();
    for (&request, spans) in &by_request {
        // Duplicate span IDs cannot happen within one process (atomic
        // allocation) and processes are namespaced, so the ID set keys
        // the tree.
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
        let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
        let mut orphans = 0usize;
        for s in spans.iter() {
            if s.parent != 0 {
                if ids.contains(&s.parent) {
                    *child_dur.entry(s.parent).or_default() += s.dur_us;
                } else {
                    orphans += 1;
                    anomalies.orphans.push(Orphan {
                        request,
                        span: s.span,
                        parent: s.parent,
                        stage: s.stage.clone(),
                    });
                }
            }
        }
        // Self time per stage: a span's duration minus its direct
        // children's. Saturating, because a child measured in another
        // process can slightly outlast its parent's measurement window.
        let mut stage_self: BTreeMap<&str, u64> = BTreeMap::new();
        let mut attributed_us = 0u64;
        let mut forwards = 0usize;
        for s in spans.iter() {
            let children = child_dur.get(&s.span).copied().unwrap_or(0);
            let self_us = s.dur_us.saturating_sub(children);
            *stage_self.entry(s.stage.as_str()).or_default() += self_us;
            attributed_us += self_us;
            if s.stage == "cluster.forward" {
                forwards += 1;
            }
        }
        let (dominant_stage, dominant_us) = stage_self
            .iter()
            .max_by_key(|(stage, us)| (**us, std::cmp::Reverse(*stage)))
            .map(|(stage, us)| ((*stage).to_string(), *us))
            .unwrap_or_default();
        if forwards >= 2 {
            anomalies.failover_requests.push(request);
        }
        requests.push(RequestSummary {
            request,
            spans: spans.len(),
            attributed_us,
            dominant_stage,
            dominant_us,
            forwards,
            orphans,
        });
    }

    let mut by_stage: BTreeMap<&str, Histogram> = BTreeMap::new();
    for span in &set.spans {
        by_stage.entry(span.stage.as_str()).or_default().record(span.dur_us);
    }
    let stages = by_stage
        .into_iter()
        .map(|(stage, h)| StageStats {
            stage: stage.to_string(),
            count: h.count(),
            p50_us: h.quantile(0.5),
            p95_us: h.quantile(0.95),
            p99_us: h.quantile(0.99),
            total_us: h.sum(),
        })
        .collect();

    for source in &set.sources {
        if source.dropped > 0 {
            anomalies.dropped_sources.push((source.node.clone(), source.dropped));
        }
    }

    Report {
        requests,
        stages,
        anomalies,
        sources: set.sources.clone(),
        span_count: set.spans.len(),
    }
}

/// How many per-request lines the text report prints before eliding.
const TEXT_REQUEST_CAP: usize = 20;

impl Report {
    /// The human-readable report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hbc-trace: {} spans, {} requests, {} sources",
            self.span_count,
            self.requests.len(),
            self.sources.len()
        );
        for source in &self.sources {
            let _ = writeln!(
                out,
                "  source {}: {} spans retained, {} dropped",
                source.node, source.retained, source.dropped
            );
        }

        let _ = writeln!(out, "\nper-request critical path");
        for r in self.requests.iter().take(TEXT_REQUEST_CAP) {
            let pct = (r.dominant_us * 100).checked_div(r.attributed_us).unwrap_or(0);
            let mut line = format!(
                "  request {}: {} spans, {}us attributed; dominant {} ({}us, {pct}%)",
                r.request, r.spans, r.attributed_us, r.dominant_stage, r.dominant_us
            );
            if r.forwards >= 2 {
                line.push_str(&format!(" [failover: {} forwards]", r.forwards));
            }
            if r.orphans > 0 {
                line.push_str(&format!(" [{} orphans]", r.orphans));
            }
            let _ = writeln!(out, "{line}");
        }
        if self.requests.len() > TEXT_REQUEST_CAP {
            let _ =
                writeln!(out, "  … and {} more requests", self.requests.len() - TEXT_REQUEST_CAP);
        }

        let _ = writeln!(out, "\nper-stage latency (us)");
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>8} {:>8} {:>8} {:>10}",
            "stage", "count", "p50", "p95", "p99", "total"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>8} {:>8} {:>8} {:>10}",
                s.stage, s.count, s.p50_us, s.p95_us, s.p99_us, s.total_us
            );
        }

        let _ = writeln!(out, "\nanomalies");
        let _ = writeln!(out, "  orphan spans: {}", self.anomalies.orphans.len());
        for o in self.anomalies.orphans.iter().take(10) {
            let _ = writeln!(
                out,
                "    request {} span {} ({}) has no parent {} in the trace",
                o.request, o.span, o.stage, o.parent
            );
        }
        if self.anomalies.failover_requests.is_empty() {
            let _ = writeln!(out, "  failover retries: none");
        } else {
            let ids: Vec<String> =
                self.anomalies.failover_requests.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "  failover retries: requests {}", ids.join(", "));
        }
        if self.anomalies.dropped_sources.is_empty() {
            let _ = writeln!(out, "  drop gaps: none (every ring exported complete)");
        } else {
            for (node, dropped) in &self.anomalies.dropped_sources {
                let _ =
                    writeln!(out, "  drop gap: {node} evicted {dropped} spans (trace truncated)");
            }
        }
        out
    }

    /// The stable machine-readable schema (`--format json`), built on the
    /// canonical JSON renderer. `version` increments on breaking change.
    pub fn to_json(&self) -> String {
        let requests = self
            .requests
            .iter()
            .map(|r| {
                obj([
                    ("request", Json::U64(r.request)),
                    ("spans", Json::U64(r.spans as u64)),
                    ("attributed_us", Json::U64(r.attributed_us)),
                    ("dominant_stage", Json::Str(r.dominant_stage.clone())),
                    ("dominant_us", Json::U64(r.dominant_us)),
                    ("forwards", Json::U64(r.forwards as u64)),
                    ("orphans", Json::U64(r.orphans as u64)),
                ])
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| {
                obj([
                    ("stage", Json::Str(s.stage.clone())),
                    ("count", Json::U64(s.count)),
                    ("p50_us", Json::U64(s.p50_us)),
                    ("p95_us", Json::U64(s.p95_us)),
                    ("p99_us", Json::U64(s.p99_us)),
                    ("total_us", Json::U64(s.total_us)),
                ])
            })
            .collect();
        let orphans = self
            .anomalies
            .orphans
            .iter()
            .map(|o| {
                obj([
                    ("request", Json::U64(o.request)),
                    ("span", Json::U64(o.span)),
                    ("parent", Json::U64(o.parent)),
                    ("stage", Json::Str(o.stage.clone())),
                ])
            })
            .collect();
        let failovers = self.anomalies.failover_requests.iter().map(|&r| Json::U64(r)).collect();
        let dropped = self
            .anomalies
            .dropped_sources
            .iter()
            .map(|(node, n)| obj([("node", Json::Str(node.clone())), ("dropped", Json::U64(*n))]))
            .collect();
        let sources = self
            .sources
            .iter()
            .map(|s| {
                obj([
                    ("node", Json::Str(s.node.clone())),
                    ("dropped", Json::U64(s.dropped)),
                    ("retained", Json::U64(s.retained)),
                ])
            })
            .collect();
        obj([
            ("version", Json::U64(1)),
            ("tool", Json::Str("hbc-trace".to_string())),
            ("span_count", Json::U64(self.span_count as u64)),
            ("requests", Json::Arr(requests)),
            ("stages", Json::Arr(stages)),
            (
                "anomalies",
                obj([
                    ("orphans", Json::Arr(orphans)),
                    ("failover_requests", Json::Arr(failovers)),
                    ("dropped_sources", Json::Arr(dropped)),
                ]),
            ),
            ("sources", Json::Arr(sources)),
        ])
        .render()
    }
}

/// A JSON object from key/value pairs (keys sort on render).
fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(request: u64, span: u64, parent: u64, stage: &str, start: u64, dur: u64) -> String {
        format!(
            "{{\"request\":{request},\"span\":{span},\"parent\":{parent},\
             \"stage\":\"{stage}\",\"start_us\":{start},\"dur_us\":{dur}}}\n"
        )
    }

    /// A two-process trace: coordinator request 1 forwards to a worker
    /// whose spans carry the same request ID and hang under span 2.
    fn federated_fixture() -> TraceSet {
        let mut jsonl = String::new();
        jsonl
            .push_str("{\"trace_meta\":1,\"node\":\"coordinator\",\"dropped\":0,\"retained\":3}\n");
        jsonl.push_str(&line(1, 10, 0, "serve.queue_wait", 0, 30));
        jsonl.push_str(&line(1, 11, 0, "serve.parse", 30, 20));
        jsonl.push_str(&line(1, 2, 0, "cluster.forward", 50, 1000));
        jsonl.push_str(
            "{\"trace_meta\":1,\"node\":\"127.0.0.1:9101\",\"dropped\":0,\"retained\":3}\n",
        );
        let base = 9101u64 << 32;
        jsonl.push_str(&line(1, base + 1, 2, "cluster.worker_execute", 7, 950));
        jsonl.push_str(&line(1, base + 2, base + 1, "serve.cache_lookup", 8, 40));
        jsonl.push_str(&line(1, base + 3, base + 1, "serve.simulate", 50, 880));
        TraceSet::parse_jsonl(&jsonl).expect("fixture parses")
    }

    #[test]
    fn federated_trace_stitches_into_one_tree() {
        let report = analyze(&federated_fixture());
        assert_eq!(report.requests.len(), 1, "one request across both processes");
        let r = &report.requests[0];
        assert_eq!(r.request, 1);
        assert_eq!(r.spans, 6);
        assert_eq!(r.orphans, 0);
        assert!(report.anomalies.orphans.is_empty());
        // Self time: simulate 880 dominates (forward keeps 1000-950=50,
        // worker_execute keeps 950-40-880=30).
        assert_eq!(r.dominant_stage, "serve.simulate");
        assert_eq!(r.dominant_us, 880);
        assert_eq!(r.attributed_us, 30 + 20 + 50 + 30 + 40 + 880);
    }

    #[test]
    fn orphans_and_failovers_are_flagged() {
        let mut jsonl = String::new();
        jsonl.push_str(&line(5, 20, 0, "cluster.forward", 0, 100));
        jsonl.push_str(&line(5, 21, 0, "cluster.forward", 100, 200));
        jsonl.push_str(&line(5, 22, 999, "serve.simulate", 10, 50));
        let report = analyze(&TraceSet::parse_jsonl(&jsonl).unwrap());
        assert_eq!(report.anomalies.failover_requests, [5]);
        assert_eq!(report.anomalies.orphans.len(), 1);
        assert_eq!(report.anomalies.orphans[0].parent, 999);
        assert_eq!(report.requests[0].forwards, 2);
        assert_eq!(report.requests[0].orphans, 1);
        // The orphan still contributes its own self time.
        assert_eq!(report.requests[0].attributed_us, 350);
    }

    #[test]
    fn drop_gaps_come_from_meta_lines() {
        let jsonl = "{\"trace_meta\":1,\"node\":\"127.0.0.1:9101\",\"dropped\":7,\"retained\":0}\n";
        let report = analyze(&TraceSet::parse_jsonl(jsonl).unwrap());
        assert_eq!(report.anomalies.dropped_sources, [("127.0.0.1:9101".to_string(), 7)]);
        assert_eq!(report.sources.len(), 1);
    }

    #[test]
    fn stage_aggregates_use_durations() {
        let mut jsonl = String::new();
        for (i, dur) in [100u64, 200, 300].iter().enumerate() {
            jsonl.push_str(&line(i as u64 + 1, 50 + i as u64, 0, "serve.parse", 0, *dur));
        }
        let report = analyze(&TraceSet::parse_jsonl(&jsonl).unwrap());
        assert_eq!(report.stages.len(), 1);
        let s = &report.stages[0];
        assert_eq!((s.stage.as_str(), s.count, s.total_us), ("serve.parse", 3, 600));
        assert!(s.p50_us >= 100 && s.p99_us >= s.p50_us);
    }

    #[test]
    fn malformed_lines_error_with_their_number() {
        let err = TraceSet::parse_jsonl("\n{\"request\":1}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = TraceSet::parse_jsonl("not json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn json_report_is_schema_stamped_and_parseable() {
        let report = analyze(&federated_fixture());
        let text = report.to_json();
        let v = Json::parse(&text).expect("report is valid JSON");
        let top = v.as_obj().unwrap();
        assert_eq!(top["version"].as_u64(), Some(1));
        assert_eq!(top["tool"].as_str(), Some("hbc-trace"));
        assert_eq!(top["span_count"].as_u64(), Some(6));
        let anomalies = top["anomalies"].as_obj().unwrap();
        assert_eq!(anomalies["orphans"], Json::Arr(Vec::new()));
    }

    #[test]
    fn text_report_mentions_the_critical_path() {
        let text = analyze(&federated_fixture()).to_text();
        assert!(text.contains("dominant serve.simulate"), "{text}");
        assert!(text.contains("orphan spans: 0"), "{text}");
        assert!(text.contains("source 127.0.0.1:9101"), "{text}");
    }
}
