//! `hbc-trace`: causal analysis over span JSONL exports.
//!
//! ```text
//! hbc-trace [FILE …] [--addr URL] [--format text|json]
//!           [--out PATH] [--save-jsonl PATH]
//! ```
//!
//! Inputs compose: every `FILE` is a span JSONL export (a saved
//! `GET /trace` or `GET /trace?federated=1` body), and `--addr` fetches a
//! live federated trace from a coordinator on top. At least one input is
//! required. The merged set is analyzed into per-request causal trees,
//! critical-path attribution, per-stage p50/p95/p99, and anomalies
//! (orphan spans, failover retries, drop gaps).
//!
//! `--format text` (default) prints the human report; `--format json`
//! prints the stable schema-stamped JSON. `--out` writes the report to a
//! file instead of standard output; `--save-jsonl` saves the fetched
//! federated stream (CI keeps it as an artifact).

use std::time::Duration;

use hbc_serve::client::{parse_addr, HttpClient};
use hbc_trace::{analyze, TraceSet};

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut addr: Option<String> = None;
    let mut format = "text".to_string();
    let mut out: Option<String> = None;
    let mut save_jsonl: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--format" => {
                format = value("--format");
                if format != "text" && format != "json" {
                    usage("--format must be `text` or `json`");
                }
            }
            "--out" => out = Some(value("--out")),
            "--save-jsonl" => save_jsonl = Some(value("--save-jsonl")),
            flag if flag.starts_with("--") => usage(&format!("unknown flag `{flag}`")),
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && addr.is_none() {
        usage("at least one FILE or --addr is required");
    }

    let mut set = TraceSet::default();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
        set.extend_from_jsonl(&text).unwrap_or_else(|e| fail(&format!("{file}: {e}")));
    }
    if let Some(addr) = &addr {
        let jsonl = fetch_federated(addr);
        if let Some(path) = &save_jsonl {
            std::fs::write(path, &jsonl)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        }
        set.extend_from_jsonl(&jsonl).unwrap_or_else(|e| fail(&format!("{addr}: {e}")));
    } else if save_jsonl.is_some() {
        usage("--save-jsonl only makes sense with --addr");
    }

    let report = analyze(&set);
    let rendered = if format == "json" { report.to_json() } else { report.to_text() };
    match &out {
        Some(path) => std::fs::write(path, &rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
        None => print!("{rendered}"),
    }
}

/// Fetches `GET /trace?federated=1` from a coordinator.
fn fetch_federated(addr: &str) -> String {
    let socket = parse_addr(addr).unwrap_or_else(|e| fail(&e));
    let client = HttpClient::new(Duration::from_secs(30));
    let response = client
        .get(socket, "/trace?federated=1")
        .unwrap_or_else(|e| fail(&format!("fetching trace from {addr}: {e}")));
    if response.status != 200 {
        fail(&format!("{addr} answered {} to GET /trace?federated=1", response.status));
    }
    String::from_utf8(response.body)
        .unwrap_or_else(|_| fail(&format!("{addr} answered a non-UTF-8 trace body")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: hbc-trace [FILE ...] [--addr URL] [--format text|json] \
         [--out PATH] [--save-jsonl PATH]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
